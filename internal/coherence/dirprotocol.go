package coherence

import (
	"fmt"

	"dirsim/internal/blockid"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/directory"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// DirEngine is the general directory-based invalidation protocol engine.
// Instantiated with different directory stores it realises the whole
// Dir_i{B,NB} design space of Section 2:
//
//	Dir1NB   LimitedPointer(1, no broadcast)  — at most one copy ever
//	Dir_iNB  LimitedPointer(i, no broadcast)  — at most i copies
//	Dir_nNB  FullMap                          — sequential invalidates
//	Dir0B    TwoBit                           — broadcast invalidates
//	Dir_iB   LimitedPointer(i, broadcast bit) — directed then broadcast
//	coded    CodedSet                         — limited broadcast superset
//
// The state-change model is the classic multiple-readers/single-writer
// policy: clean blocks may be cached anywhere the store permits, a dirty
// block lives in exactly one cache, and a write removes all other copies.
type DirEngine struct {
	name      string
	cfg       Config
	store     directory.Store
	stats     Stats
	tab       *blockid.Table
	state     blockStates
	replacers []cache.Replacer

	// exclusive marks Dir1NB: a block lives in at most one cache, so a
	// write hit needs no directory query at all and misses carry their
	// single invalidation with the write-back/fetch request.
	exclusive bool
	// probesPerLookup models Tang's duplicate-directory search cost in
	// directory accesses (1 for indexed stores, n for Tang).
	probesPerLookup int

	// entries is the sparse-directory entry tracker (nil when the
	// directory is memory-resident).
	entries cache.Replacer

	// txn tracks whether the reference being processed has used the bus.
	txn bool
	// last is the classification of the reference being processed.
	last events.Type

	// scratch is the reusable buffer handed to store.Targets on the
	// per-reference path; it reaches steady-state capacity after the
	// first few invalidations and never allocates again.
	scratch []int
}

var (
	_ Engine        = (*DirEngine)(nil)
	_ IndexedEngine = (*DirEngine)(nil)
)

// NewDirEngine assembles a directory engine around an arbitrary store. Most
// callers want one of the named constructors below.
func NewDirEngine(name string, store directory.Store, cfg Config) (*DirEngine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	e := &DirEngine{
		name:            name,
		cfg:             cfg,
		store:           store,
		tab:             blockid.New(),
		replacers:       repl,
		probesPerLookup: 1,
	}
	if lp, ok := store.(*directory.LimitedPointer); ok {
		e.exclusive = lp.Pointers() == 1 && !lp.Broadcast()
	}
	if tg, ok := store.(*directory.Tang); ok {
		e.probesPerLookup = tg.Probes()
	}
	if cfg.DirEntries > 0 {
		lru, err := cache.NewLRU(cfg.DirEntries)
		if err != nil {
			return nil, err
		}
		e.entries = lru
	}
	return e, nil
}

// NewDir1NB returns the paper's most restrictive scheme: a single pointer,
// no broadcast, so a block resides in at most one cache at a time.
func NewDir1NB(cfg Config) (*DirEngine, error) {
	st, err := directory.NewLimitedPointer(1, cfg.Caches, false)
	if err != nil {
		return nil, err
	}
	return NewDirEngine("Dir1NB", st, cfg)
}

// NewDiriNB returns Dir_iNB: up to i simultaneous copies, maintained by
// invalidating the oldest copy when a pointer is needed — Section 6's
// "trades off a slightly increased miss rate for avoiding broadcasts
// altogether". NewDiriNB(1, cfg) is Dir1NB.
func NewDiriNB(i int, cfg Config) (*DirEngine, error) {
	st, err := directory.NewLimitedPointer(i, cfg.Caches, false)
	if err != nil {
		return nil, err
	}
	return NewDirEngine(fmt.Sprintf("Dir%dNB", i), st, cfg)
}

// NewDirnNB returns the Censier–Feautrier full-map scheme: a presence bit
// per cache, invalidations delivered as sequential directed messages.
func NewDirnNB(cfg Config) (*DirEngine, error) {
	return NewDirEngine("DirnNB", directory.NewFullMap(cfg.Caches), cfg)
}

// NewTang returns Tang's scheme: semantically the full map, but the
// directory is organised as duplicates of every cache directory, so each
// lookup searches n tag stores (reflected in Stats.DirAccesses).
func NewTang(cfg Config) (*DirEngine, error) {
	return NewDirEngine("Tang", directory.NewTang(cfg.Caches), cfg)
}

// NewDir0B returns the Archibald–Baer scheme: two state bits per block, no
// cache indices, broadcast invalidations and write-back requests.
func NewDir0B(cfg Config) (*DirEngine, error) {
	return NewDirEngine("Dir0B", directory.NewTwoBit(), cfg)
}

// NewDiriB returns Dir_iB: i pointers plus a broadcast bit. While at most i
// caches hold the block, invalidations are directed; beyond that the
// broadcast bit is set and a (possibly expensive) broadcast is used.
func NewDiriB(i int, cfg Config) (*DirEngine, error) {
	st, err := directory.NewLimitedPointer(i, cfg.Caches, true)
	if err != nil {
		return nil, err
	}
	return NewDirEngine(fmt.Sprintf("Dir%dB", i), st, cfg)
}

// NewCodedSet returns the Section 6 coded-set scheme: a 2·log2(n)-bit
// superset code per block; invalidations are directed to every cache the
// code denotes ("limited broadcast"), some of which hold no copy.
func NewCodedSet(cfg Config) (*DirEngine, error) {
	st, err := directory.NewCodedSet(cfg.Caches)
	if err != nil {
		return nil, err
	}
	return NewDirEngine("CodedSet", st, cfg)
}

// Name implements Engine.
func (e *DirEngine) Name() string { return e.name }

// Caches implements Engine.
func (e *DirEngine) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *DirEngine) Stats() *Stats { return &e.stats }

// ResetStats implements Engine: tallies are zeroed, protocol state kept.
func (e *DirEngine) ResetStats() { e.stats = Stats{} }

// AccessInstrs implements IndexedEngine: n coalesced instruction fetches.
func (e *DirEngine) AccessInstrs(n uint64) {
	e.stats.Refs += n
	e.stats.Events.Add(events.Instr, n)
}

// event records the reference's Table 4 classification.
func (e *DirEngine) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
}

// Store exposes the underlying directory organisation (for storage
// accounting and tests).
func (e *DirEngine) Store() directory.Store { return e.store }

// emit records a bus operation; anything other than an overlapped
// directory check marks the reference as a bus transaction.
func (e *DirEngine) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	switch op {
	case bus.OpDirCheckOverlapped:
		e.stats.DirAccesses += uint64(e.probesPerLookup)
	case bus.OpDirCheck:
		e.stats.DirAccesses += uint64(e.probesPerLookup)
		e.txn = true
	case bus.OpMemRead:
		e.stats.MemAccesses++
		e.txn = true
	case bus.OpWriteBack:
		e.stats.MemAccesses++
		e.txn = true
	default:
		e.txn = true
	}
}

// BindBlocks implements IndexedEngine.
func (e *DirEngine) BindBlocks(t *blockid.Table) bool {
	if e.tab.Len() > 0 {
		return false
	}
	e.tab = t
	return true
}

// Access implements Engine: intern the block and delegate to AccessID.
func (e *DirEngine) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	var id blockid.ID
	if kind != trace.Instr {
		id, _ = e.tab.Intern(block)
	}
	return e.AccessID(c, kind, block, id, first)
}

// AccessID implements IndexedEngine.
func (e *DirEngine) AccessID(c int, kind trace.Kind, block uint64, id blockid.ID, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		// Instructions cause no consistency traffic (Section 4).
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, id, first)
	case trace.Write:
		e.write(c, block, id, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *DirEngine) read(c int, block uint64, id blockid.ID, first bool) {
	e.state.ensure(id)
	st := &e.state
	if st.sharers[id].Contains(c) {
		e.event(events.ReadHit)
		e.touch(c, id)
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fill(c, block, id)
		return
	}
	// The miss request's address send doubles as the directory lookup.
	e.emit(bus.OpDirCheckOverlapped)
	switch {
	case st.dirty[id]:
		e.event(events.ReadMissDirty)
		if e.exclusive {
			// Dir1NB: one notification tells the owner to write the
			// block back and invalidate it; the requester receives
			// the data with the write-back.
			e.emit(bus.OpInvalidate)
			e.emit(bus.OpWriteBack)
			e.invalidateCopy(id, int(st.owner[id]))
		} else {
			// The directory asks the owner to flush. Directed
			// organisations send one message; Dir0B broadcasts the
			// request. The owner keeps a clean copy.
			e.emitRequest(id)
			e.emit(bus.OpWriteBack)
		}
		st.dirty[id] = false
		st.owner[id] = -1
	case !st.sharers[id].Empty():
		e.event(events.ReadMissClean)
		e.emit(bus.OpMemRead)
	default:
		e.event(events.ReadMissUncached)
		e.emit(bus.OpMemRead)
	}
	e.fill(c, block, id)
}

func (e *DirEngine) write(c int, block uint64, id blockid.ID, first bool) {
	e.state.ensure(id)
	st := &e.state
	if st.sharers[id].Contains(c) {
		e.touch(c, id)
		if st.dirty[id] {
			// dirty implies sole owner; a hit means that owner is c.
			e.event(events.WriteHitDirty)
			return
		}
		others := st.sharers[id].CountExcluding(c)
		e.stats.InvalFanout.Observe(others)
		if others == 0 {
			e.event(events.WriteHitCleanSole)
			if !e.exclusive {
				// The directory must confirm no other copy exists
				// (this is the access Dir0B's "clean in exactly one
				// cache" state answers without a broadcast).
				e.emit(bus.OpDirCheck)
			}
		} else {
			e.event(events.WriteHitCleanShared)
			e.emit(bus.OpDirCheck)
			e.invalidateOthers(id, c)
		}
		e.takeExclusive(c, block, id)
		return
	}
	if first {
		e.event(events.WriteMissFirst)
		e.takeExclusive(c, block, id)
		return
	}
	e.emit(bus.OpDirCheckOverlapped)
	switch {
	case st.dirty[id]:
		e.event(events.WriteMissDirty)
		// Flush the old owner's copy and invalidate it; the requester
		// receives the data with the write-back.
		if e.exclusive {
			e.emit(bus.OpInvalidate)
		} else {
			e.emitRequest(id)
		}
		e.emit(bus.OpWriteBack)
		e.invalidateCopy(id, int(st.owner[id]))
		st.dirty[id] = false
	case !st.sharers[id].Empty():
		e.event(events.WriteMissClean)
		e.stats.InvalFanout.Observe(st.sharers[id].Count())
		e.emit(bus.OpMemRead)
		e.invalidateOthers(id, c)
	default:
		e.event(events.WriteMissUncached)
		e.emit(bus.OpMemRead)
	}
	e.takeExclusive(c, block, id)
}

// takeExclusive installs c as the sole, dirty holder of block after a
// write, updating ground truth, directory and (in finite mode) residency.
func (e *DirEngine) takeExclusive(c int, block uint64, id blockid.ID) {
	e.ensureEntry(block, id)
	e.store.SetSole(id, c)
	st := &e.state
	st.sharers[id].Clear()
	st.sharers[id].Add(c)
	st.dirty[id] = true
	st.owner[id] = int32(c)
	e.insertReplacer(c, block, id)
}

// emitRequest sends the write-back request for a dirty block to its owner:
// a directed message when the directory knows the owner, a broadcast when
// it does not (Dir0B "relies on broadcasts to perform invalidates and
// write-back requests").
func (e *DirEngine) emitRequest(id blockid.ID) {
	var bcast bool
	e.scratch, bcast = e.store.Targets(e.scratch[:0], id, -1)
	if bcast {
		e.emit(bus.OpBroadcastInvalidate)
	} else {
		e.emit(bus.OpInvalidate)
	}
}

// invalidateOthers removes every copy of block except cache c's, using the
// delivery mechanism the directory organisation supports, and keeps the
// fan-out statistics.
func (e *DirEngine) invalidateOthers(id blockid.ID, c int) {
	e.stats.InvalEvents++
	targets, bcast := e.store.Targets(e.scratch[:0], id, c)
	e.scratch = targets
	sh := &e.state.sharers[id]
	if bcast {
		e.stats.BroadcastInvals++
		e.emit(bus.OpBroadcastInvalidate)
	} else {
		for _, t := range targets {
			e.stats.DirectedInvals++
			e.emit(bus.OpInvalidate)
			if !sh.Contains(t) {
				// A coded-set superset member that holds no copy.
				e.stats.WastedInvals++
			}
		}
	}
	// Ground truth: all other copies are gone.
	for h := sh.Next(0); h >= 0; h = sh.Next(h + 1) {
		if h != c {
			e.removeFromReplacer(h, id)
		}
	}
	keep := sh.Contains(c)
	sh.Clear()
	if keep {
		sh.Add(c)
	}
}

// invalidateCopy removes a single cache's copy (directed invalidation).
func (e *DirEngine) invalidateCopy(id blockid.ID, holder int) {
	if holder < 0 {
		return
	}
	e.state.sharers[id].Remove(holder)
	e.store.Remove(id, holder)
	e.removeFromReplacer(holder, id)
}

// ensureEntry reserves a sparse-directory entry for block, evicting the
// least-recently-used entry if the directory is full. The displaced
// block's copies are all invalidated (written back first when dirty) so no
// cached data outlives its directory entry.
func (e *DirEngine) ensureEntry(block uint64, id blockid.ID) {
	if e.entries == nil {
		return
	}
	victim, evicted := e.entries.Insert(block, id)
	if !evicted {
		return
	}
	e.stats.DirEntryEvictions++
	e.state.ensure(victim)
	st := &e.state
	if st.sharers[victim].Empty() {
		e.store.Clear(victim)
		return
	}
	if st.dirty[victim] {
		e.emit(bus.OpWriteBack)
		st.dirty[victim] = false
		st.owner[victim] = -1
	}
	targets, bcast := e.store.Targets(e.scratch[:0], victim, -1)
	e.scratch = targets
	if bcast {
		e.emit(bus.OpBroadcastInvalidate)
		e.stats.BroadcastInvals++
	} else {
		for range targets {
			e.emit(bus.OpInvalidate)
			e.stats.DirectedInvals++
		}
	}
	sh := &st.sharers[victim]
	for h := sh.Next(0); h >= 0; h = sh.Next(h + 1) {
		e.removeFromReplacer(h, victim)
	}
	sh.Clear()
	e.store.Clear(victim)
}

// fill gives cache c a copy of block: directory first (which may force a
// pointer eviction in Dir_iNB), then ground truth, then the finite-cache
// replacer (which may evict a victim block).
func (e *DirEngine) fill(c int, block uint64, id blockid.ID) {
	e.ensureEntry(block, id)
	if victim := e.store.Add(id, c); victim >= 0 {
		// Dir_iNB freed a pointer by invalidating an existing copy.
		e.stats.PointerEvictions++
		e.stats.InvalEvents++
		e.stats.DirectedInvals++
		e.emit(bus.OpInvalidate)
		st := &e.state
		if st.dirty[id] && int(st.owner[id]) == victim {
			// Cannot happen under the protocol (a dirty block has
			// one holder and Add follows a flush), but write back
			// defensively rather than lose data silently.
			e.emit(bus.OpWriteBack)
			st.dirty[id] = false
			st.owner[id] = -1
		}
		st.sharers[id].Remove(victim)
		e.removeFromReplacer(victim, id)
	}
	e.state.sharers[id].Add(c)
	e.insertReplacer(c, block, id)
}

// touch refreshes LRU recency in finite mode and keeps the block's sparse
// directory entry warm. The no-op infinite-mode check stays in this thin
// wrapper so hit paths inline it; the real work is outlined.
func (e *DirEngine) touch(c int, id blockid.ID) {
	if e.replacers == nil && e.entries == nil {
		return
	}
	e.touchFinite(c, id)
}

func (e *DirEngine) touchFinite(c int, id blockid.ID) {
	if e.replacers != nil {
		e.replacers[c].Touch(id)
	}
	if e.entries != nil {
		e.entries.Touch(id)
	}
}

// insertReplacer records residency in finite mode, handling the eviction of
// a victim block: write it back if dirty, drop it from ground truth, and
// send the directory a replacement hint.
func (e *DirEngine) insertReplacer(c int, block uint64, id blockid.ID) {
	if e.replacers == nil {
		return
	}
	victim, evicted := e.replacers[c].Insert(block, id)
	if !evicted {
		return
	}
	e.stats.Evictions++
	e.state.ensure(victim)
	st := &e.state
	if st.sharers[victim].Empty() {
		return
	}
	if st.dirty[victim] && int(st.owner[victim]) == c {
		e.emit(bus.OpWriteBack)
		e.stats.EvictionWriteBacks++
		st.dirty[victim] = false
		st.owner[victim] = -1
	}
	st.sharers[victim].Remove(c)
	e.store.Remove(victim, c)
}

func (e *DirEngine) removeFromReplacer(c int, id blockid.ID) {
	if e.replacers != nil {
		e.replacers[c].Remove(id)
	}
}

// CheckInvariants implements Engine.
func (e *DirEngine) CheckInvariants() error {
	for i := range e.state.sharers {
		id := blockid.ID(i)
		sh := &e.state.sharers[i]
		n := sh.Count()
		if n == 0 {
			// No cached copy — the absent entry of the map-keyed
			// representation. The directory may remember such blocks
			// arbitrarily (TwoBit and CodedSet never forget holders),
			// exactly as it could for deleted map entries.
			continue
		}
		block := e.tab.Block(id)
		if e.entries != nil && !e.entries.Contains(id) {
			return fmt.Errorf("%s: block %#x cached without a directory entry", e.name, block)
		}
		if e.state.dirty[i] {
			if n != 1 {
				return fmt.Errorf("%s: block %#x dirty with %d holders", e.name, block, n)
			}
			if sole, _ := sh.Sole(); sole != int(e.state.owner[i]) {
				return fmt.Errorf("%s: block %#x owner %d not the holder", e.name, block, e.state.owner[i])
			}
		}
		cnt, exact := e.store.Count(id)
		if exact && cnt != n {
			return fmt.Errorf("%s: block %#x directory says %d holders, truth %d", e.name, block, cnt, n)
		}
		targets, bcast := e.store.Targets(nil, id, -1)
		if !bcast {
			// Directed delivery must cover every true holder.
			covered := map[int]bool{}
			for _, t := range targets {
				covered[t] = true
			}
			var missing int = -1
			sh.ForEach(func(h int) bool {
				if !covered[h] {
					missing = h
					return false
				}
				return true
			})
			if missing >= 0 {
				return fmt.Errorf("%s: block %#x holder %d not covered by directory targets", e.name, block, missing)
			}
		}
		if e.exclusive && n > 1 {
			return fmt.Errorf("%s: block %#x has %d copies under the exclusive scheme", e.name, block, n)
		}
		if lp, ok := e.store.(*directory.LimitedPointer); ok && !lp.Broadcast() && n > lp.Pointers() {
			return fmt.Errorf("%s: block %#x has %d copies, pointer budget %d", e.name, block, n, lp.Pointers())
		}
	}
	return nil
}
