package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dirsim/internal/bus"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// replay feeds a random op stream (decoded from raw words) to the given
// engines via a shared first-reference tracker, then returns the feeder.
func replay(engs []Engine, raw []uint32, caches, blocks int) {
	f := newFeeder(engs...)
	for _, w := range raw {
		c := int(w) % caches
		b := uint64(w>>8) % uint64(blocks)
		switch (w >> 4) % 5 {
		case 0:
			f.write(c, b)
		case 1:
			f.access(c, trace.Instr, b)
		default:
			f.read(c, b)
		}
	}
}

// Property: every engine keeps its invariants on arbitrary reference
// streams.
func TestQuickInvariantsHold(t *testing.T) {
	f := func(raw []uint32) bool {
		engs := make([]Engine, 0, 11)
		for _, name := range []string{"dir1nb", "dir2nb", "dirnnb", "dir0b", "dir1b", "dir2b", "codedset", "tang", "wti", "dragon", "berkeley"} {
			e, err := NewByName(name, Config{Caches: 6})
			if err != nil {
				return false
			}
			engs = append(engs, e)
		}
		replay(engs, raw, 6, 24)
		for _, e := range engs {
			if err := e.CheckInvariants(); err != nil {
				t.Logf("%v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the schemes sharing the multiple-readers/single-writer
// state-change model (Dir0B, DirnNB, Dir_iB, coded set, Tang, WTI,
// Berkeley) produce identical event frequencies on every trace — the
// paper's Section 5 observation generalised.
func TestQuickSharedStateChangeModelEventEquality(t *testing.T) {
	f := func(raw []uint32) bool {
		mk := []string{"dir0b", "dirnnb", "dir4b", "codedset", "tang", "wti", "berkeley"}
		engs := make([]Engine, 0, len(mk))
		for _, name := range mk {
			e, err := NewByName(name, Config{Caches: 4})
			if err != nil {
				return false
			}
			engs = append(engs, e)
		}
		replay(engs, raw, 4, 16)
		base := engs[0].Stats().Events
		for _, e := range engs[1:] {
			if e.Stats().Events != base {
				t.Logf("%s events differ from Dir0B", e.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: every reference is classified into exactly one event, so the
// event total always equals the reference count.
func TestQuickEventsPartition(t *testing.T) {
	f := func(raw []uint32) bool {
		engs := allQuickEngines()
		replay(engs, raw, 4, 16)
		for _, e := range engs {
			st := e.Stats()
			if st.Events.Total() != st.Refs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func allQuickEngines() []Engine {
	var engs []Engine
	for _, name := range []string{"dir1nb", "dir3nb", "dirnnb", "dir0b", "dir2b", "codedset", "wti", "dragon"} {
		e, err := NewByName(name, Config{Caches: 4})
		if err != nil {
			panic(err)
		}
		engs = append(engs, e)
	}
	return engs
}

// Property: Dragon never emits invalidations and its miss count is a lower
// bound over all schemes (nothing is ever removed from a cache).
func TestQuickDragonMinimalMisses(t *testing.T) {
	f := func(raw []uint32) bool {
		engs := allQuickEngines()
		replay(engs, raw, 4, 16)
		var dragon *Stats
		for _, e := range engs {
			if e.Name() == "Dragon" {
				dragon = e.Stats()
			}
		}
		if dragon.Ops[bus.OpInvalidate] != 0 || dragon.Ops[bus.OpBroadcastInvalidate] != 0 {
			return false
		}
		dm := dragon.Events.ReadMisses() + dragon.Events.WriteMisses()
		for _, e := range engs {
			st := e.Stats()
			if st.Events.ReadMisses()+st.Events.WriteMisses() < dm {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dir_iNB miss counts decrease (weakly) as i grows, and Dir_nNB
// (unbounded) is the floor — the Section 6 copy-limit trade-off.
func TestQuickDiriNBMissMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		var engs []Engine
		for _, i := range []int{1, 2, 3} {
			e, err := NewDiriNB(i, Config{Caches: 4})
			if err != nil {
				return false
			}
			engs = append(engs, e)
		}
		full, err := NewDirnNB(Config{Caches: 4})
		if err != nil {
			return false
		}
		engs = append(engs, full)
		replay(engs, raw, 4, 12)
		miss := func(e Engine) uint64 {
			return e.Stats().Events.ReadMisses() + e.Stats().Events.WriteMisses()
		}
		return miss(engs[0]) >= miss(engs[1]) && miss(engs[1]) >= miss(engs[2]) && miss(engs[2]) >= miss(engs[3])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a broadcast cost of 1 (the paper's base model), Dir_nNB
// costs at least as much as Dir0B under the pipelined bus: sequential
// invalidates can only add messages relative to a single broadcast.
func TestQuickSequentialCostsAtLeastBroadcast(t *testing.T) {
	f := func(raw []uint32) bool {
		d0, err := NewDir0B(Config{Caches: 4})
		if err != nil {
			return false
		}
		dn, err := NewDirnNB(Config{Caches: 4})
		if err != nil {
			return false
		}
		replay([]Engine{d0, dn}, raw, 4, 16)
		m := bus.Pipelined()
		return dn.Stats().CyclesPerRef(m) >= d0.Stats().CyclesPerRef(m)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- finite-cache mode ---------------------------------------------------------

func finCfg() Config { return Config{Caches: 4, FiniteSets: 4, FiniteWays: 2} }

func TestFiniteCacheEvictsAndWritesBack(t *testing.T) {
	e := must(NewDir0B(finCfg()))
	f := newFeeder(e)
	// Dirty a block, then stream enough conflicting blocks through cache
	// 0 to force its eviction (all blocks map to set 0: multiples of 4).
	f.write(0, 0)
	for b := uint64(4); b <= 40; b += 4 {
		f.read(0, b)
	}
	st := e.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions in finite mode")
	}
	if st.EvictionWriteBacks == 0 {
		t.Fatal("dirty eviction did not write back")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The evicted dirty block is now uncached; re-reading it is a
	// (priced) uncached miss, not a first reference.
	before := st.Events[events.ReadMissUncached]
	f.read(0, 0)
	if st.Events[events.ReadMissUncached] != before+1 {
		t.Errorf("re-read of evicted block classified as %v", st.Events)
	}
}

func TestFiniteCachesMissMoreThanInfinite(t *testing.T) {
	inf := must(NewDir0B(Config{Caches: 4}))
	fin := must(NewDir0B(finCfg()))
	f := newFeeder(inf, fin)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		c := rng.Intn(4)
		b := uint64(rng.Intn(256))
		if rng.Intn(4) == 0 {
			f.write(c, b)
		} else {
			f.read(c, b)
		}
	}
	infMiss := inf.Stats().Events.DataMissRate()
	finMiss := fin.Stats().Events.DataMissRate()
	if finMiss <= infMiss {
		t.Errorf("finite miss rate %v not above infinite %v", finMiss, infMiss)
	}
	m := bus.Pipelined()
	if fin.Stats().CyclesPerRef(m) <= inf.Stats().CyclesPerRef(m) {
		t.Error("finite caches should cost more bus cycles")
	}
	if err := fin.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFiniteDragonWritesBackLastCopy(t *testing.T) {
	e := must(NewDragon(finCfg()))
	f := newFeeder(e)
	f.write(0, 0) // memory stale, only copy in cache 0
	for b := uint64(4); b <= 40; b += 4 {
		f.read(0, b)
	}
	st := e.Stats()
	if st.EvictionWriteBacks == 0 {
		t.Fatal("Dragon did not flush the last copy of a stale block")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFiniteWTISilentEvictions(t *testing.T) {
	e := must(NewWTI(finCfg()))
	f := newFeeder(e)
	f.write(0, 0)
	for b := uint64(4); b <= 40; b += 4 {
		f.read(0, b)
	}
	st := e.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions")
	}
	if st.Ops[bus.OpWriteBack] != 0 {
		t.Fatal("write-through caches must not write back on eviction")
	}
}

// Property: finite-mode invariants hold for every engine under random
// streams with heavy conflict pressure.
func TestQuickFiniteInvariants(t *testing.T) {
	f := func(raw []uint32) bool {
		var engs []Engine
		for _, name := range []string{"dir1nb", "dir2nb", "dirnnb", "dir0b", "dir2b", "codedset", "wti", "dragon"} {
			e, err := NewByName(name, Config{Caches: 3, FiniteSets: 2, FiniteWays: 2})
			if err != nil {
				return false
			}
			engs = append(engs, e)
		}
		replay(engs, raw, 3, 64)
		for _, e := range engs {
			if err := e.CheckInvariants(); err != nil {
				t.Logf("%v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
