package coherence

import (
	"math/rand"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

func TestReadBroadcastSnarfRepairsAllCopies(t *testing.T) {
	e := must(NewReadBroadcast(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.read(2, 1)  // three holders
	f.write(3, 1) // invalidates all three; they become snarfers
	f.read(0, 1)  // one bus read: 0 refills, 1 and 2 snarf for free
	st := e.Stats()
	if st.Snarfs != 2 {
		t.Fatalf("Snarfs = %d, want 2", st.Snarfs)
	}
	// Caches 1 and 2 hit without further bus reads.
	before := st.Ops[bus.OpMemRead]
	f.read(1, 1)
	f.read(2, 1)
	if st.Events[events.ReadHit] != 2 {
		t.Fatalf("snarfed copies did not hit: %v", st.Events)
	}
	if st.Ops[bus.OpMemRead] != before {
		t.Fatal("snarfed hits used the bus")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBroadcastBeatsWTIOnReadSharing(t *testing.T) {
	// Wide read sharing with occasional writes: read-broadcast repairs
	// all readers with one bus read where WTI pays one miss per reader.
	rb := must(NewReadBroadcast(cfg4()))
	wti := must(NewWTI(cfg4()))
	f := newFeeder(rb, wti)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 40000; i++ {
		b := uint64(rng.Intn(8))
		if rng.Intn(20) == 0 {
			f.write(rng.Intn(4), b)
		} else {
			f.read(rng.Intn(4), b)
		}
	}
	m := bus.Pipelined()
	if rb.Stats().CyclesPerRef(m) >= wti.Stats().CyclesPerRef(m) {
		t.Errorf("ReadBroadcast %.4f not below WTI %.4f",
			rb.Stats().CyclesPerRef(m), wti.Stats().CyclesPerRef(m))
	}
	if rb.Stats().Events.ReadMisses() >= wti.Stats().Events.ReadMisses() {
		t.Errorf("ReadBroadcast misses %d not below WTI %d",
			rb.Stats().Events.ReadMisses(), wti.Stats().Events.ReadMisses())
	}
	if rb.Stats().Snarfs == 0 {
		t.Error("no snarfs happened")
	}
}

func TestReadBroadcastWriterNotSnarfer(t *testing.T) {
	e := must(NewReadBroadcast(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.write(1, 1) // 0 becomes a snarfer
	f.write(0, 1) // 0 writes: takes the block, must leave the snarf set
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadBroadcastByName(t *testing.T) {
	e, err := NewByName("readbroadcast", cfg4())
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "ReadBroadcast" {
		t.Errorf("Name = %s", e.Name())
	}
}

// rbOracle: the mrsw model plus the snarf set.
type rbOracle struct {
	holders  map[uint64]map[int]bool
	dirty    map[uint64]int
	snarfers map[uint64]map[int]bool
}

func newRBOracle() *rbOracle {
	return &rbOracle{
		holders:  map[uint64]map[int]bool{},
		dirty:    map[uint64]int{},
		snarfers: map[uint64]map[int]bool{},
	}
}

func (o *rbOracle) hold(block uint64, c int) {
	if o.holders[block] == nil {
		o.holders[block] = map[int]bool{}
	}
	o.holders[block][c] = true
	delete(o.snarfers[block], c)
}

func (o *rbOracle) snarfAll(block uint64) {
	for h := range o.snarfers[block] {
		o.hold(block, h)
	}
	delete(o.snarfers, block)
}

func (o *rbOracle) predict(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if kind == trace.Instr {
		return events.Instr
	}
	hs := o.holders[block]
	owner, isDirty := o.dirty[block]
	holds := hs[c]
	switch kind {
	case trace.Read:
		if holds {
			return events.ReadHit
		}
		var ev events.Type
		switch {
		case first:
			ev = events.ReadMissFirst
		case isDirty:
			ev = events.ReadMissDirty
			delete(o.dirty, block)
		case len(hs) > 0:
			ev = events.ReadMissClean
		default:
			ev = events.ReadMissUncached
		}
		o.hold(block, c)
		o.snarfAll(block)
		return ev
	default:
		var ev events.Type
		switch {
		case holds && isDirty && owner == c:
			return events.WriteHitDirty
		case holds && len(hs) == 1:
			ev = events.WriteHitCleanSole
		case holds:
			ev = events.WriteHitCleanShared
		case first:
			ev = events.WriteMissFirst
		case isDirty:
			ev = events.WriteMissDirty
		case len(hs) > 0:
			ev = events.WriteMissClean
		default:
			ev = events.WriteMissUncached
		}
		if o.snarfers[block] == nil {
			o.snarfers[block] = map[int]bool{}
		}
		for h := range hs {
			if h != c {
				o.snarfers[block][h] = true
			}
		}
		delete(o.snarfers[block], c)
		o.holders[block] = map[int]bool{c: true}
		o.dirty[block] = c
		return ev
	}
}

func TestOracleReadBroadcast(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewReadBroadcast(Config{Caches: 5}) },
		func() oracle { return newRBOracle() })
}

func TestExhaustiveReadBroadcast(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	exhaustCheck(t, 9,
		func() (Engine, error) { return NewReadBroadcast(Config{Caches: 2}) },
		func() oracle { return newRBOracle() })
}
