package coherence

import (
	"fmt"

	"dirsim/internal/bitset"
	"dirsim/internal/blockid"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// ReadBroadcast is the Rudolph–Segall read-broadcast protocol (the paper's
// reference [6]): a write-through invalidation scheme in which a cache
// whose copy was invalidated snarfs the data the next time any other cache
// reads the block over the bus — the read reply is a broadcast, so the
// refill is free. One bus read after a write repairs *every* invalidated
// copy at once, which collapses the read-miss chains invalidation
// protocols otherwise suffer on widely read-shared data.
//
// The engine extends the WTI state-change model with a per-block set of
// "snarfers": caches that held the block when it was last invalidated.
// Their copies reappear on the next bus fill. Because this changes the
// state-change model itself, ReadBroadcast's event frequencies differ from
// the Dir0B/WTI family — the point of the optimisation.
type ReadBroadcast struct {
	cfg       Config
	stats     Stats
	tab       *blockid.Table
	st        rbStates
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

// rbStates tracks, in parallel arrays indexed by block id: holders, the
// virtual written-state, and the caches whose invalidated copies are
// waiting to snarf the next bus read. A slot with empty sharers and empty
// snarfers (and therefore dirty == false — the sole written holder's
// eviction clears it) is indistinguishable from an absent entry of the map
// representation this replaced.
type rbStates struct {
	sharers  []bitset.Set
	snarfers []bitset.Set
	dirty    []bool // written and not since shared (memory stays current)
	owner    []int32
}

func (t *rbStates) ensure(id blockid.ID) {
	if int(id) < len(t.sharers) {
		return
	}
	n := int(id) + 1 + len(t.sharers)
	sharers := make([]bitset.Set, n)
	copy(sharers, t.sharers)
	snarfers := make([]bitset.Set, n)
	copy(snarfers, t.snarfers)
	dirty := make([]bool, n)
	copy(dirty, t.dirty)
	owner := make([]int32, n)
	copy(owner, t.owner)
	for i := len(t.owner); i < n; i++ {
		owner[i] = -1
	}
	t.sharers, t.snarfers, t.dirty, t.owner = sharers, snarfers, dirty, owner
}

var (
	_ Engine        = (*ReadBroadcast)(nil)
	_ IndexedEngine = (*ReadBroadcast)(nil)
)

// NewReadBroadcast returns a read-broadcast engine.
func NewReadBroadcast(cfg Config) (*ReadBroadcast, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &ReadBroadcast{cfg: cfg, tab: blockid.New(), replacers: repl}, nil
}

// Name implements Engine.
func (e *ReadBroadcast) Name() string { return "ReadBroadcast" }

// Caches implements Engine.
func (e *ReadBroadcast) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *ReadBroadcast) Stats() *Stats { return &e.stats }

// ResetStats implements Engine.
func (e *ReadBroadcast) ResetStats() { e.stats = Stats{} }

// AccessInstrs implements IndexedEngine: n coalesced instruction fetches.
func (e *ReadBroadcast) AccessInstrs(n uint64) {
	e.stats.Refs += n
	e.stats.Events.Add(events.Instr, n)
}

func (e *ReadBroadcast) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
}

func (e *ReadBroadcast) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	switch op {
	case bus.OpMemRead, bus.OpWriteBack, bus.OpWriteThrough:
		e.stats.MemAccesses++
	}
	e.txn = true
}

// BindBlocks implements IndexedEngine.
func (e *ReadBroadcast) BindBlocks(t *blockid.Table) bool {
	if e.tab.Len() > 0 {
		return false
	}
	e.tab = t
	return true
}

// Access implements Engine: intern the block and delegate to AccessID.
func (e *ReadBroadcast) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	var id blockid.ID
	if kind != trace.Instr {
		id, _ = e.tab.Intern(block)
	}
	return e.AccessID(c, kind, block, id, first)
}

// AccessID implements IndexedEngine.
func (e *ReadBroadcast) AccessID(c int, kind trace.Kind, block uint64, id blockid.ID, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, id, first)
	case trace.Write:
		e.write(c, block, id, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *ReadBroadcast) read(c int, block uint64, id blockid.ID, first bool) {
	e.st.ensure(id)
	if e.st.sharers[id].Contains(c) {
		e.event(events.ReadHit)
		e.touch(c, id)
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fillWithSnarf(c, block, id)
		return
	}
	switch {
	case e.st.dirty[id]:
		e.event(events.ReadMissDirty)
		e.st.dirty[id] = false
		e.st.owner[id] = -1
	case !e.st.sharers[id].Empty():
		e.event(events.ReadMissClean)
	default:
		e.event(events.ReadMissUncached)
	}
	// Memory is current (write-through); one bus read serves the
	// requester and every waiting snarfer.
	e.emit(bus.OpMemRead)
	e.fillWithSnarf(c, block, id)
}

func (e *ReadBroadcast) write(c int, block uint64, id blockid.ID, first bool) {
	e.st.ensure(id)
	if e.st.sharers[id].Contains(c) {
		e.touch(c, id)
		if e.st.dirty[id] {
			e.event(events.WriteHitDirty)
		} else {
			others := e.st.sharers[id].CountExcluding(c)
			e.stats.InvalFanout.Observe(others)
			if others == 0 {
				e.event(events.WriteHitCleanSole)
			} else {
				e.event(events.WriteHitCleanShared)
				e.stats.InvalEvents++
				e.stats.BroadcastInvals++
			}
		}
		e.emit(bus.OpWriteThrough)
		e.invalidateOthers(id, c)
		e.makeSole(id, c)
		return
	}
	if first {
		e.event(events.WriteMissFirst)
		e.makeSole(id, c)
		e.insertReplacer(c, block, id)
		return
	}
	switch {
	case e.st.dirty[id]:
		e.event(events.WriteMissDirty)
	case !e.st.sharers[id].Empty():
		e.event(events.WriteMissClean)
		e.stats.InvalFanout.Observe(e.st.sharers[id].Count())
		e.stats.InvalEvents++
		e.stats.BroadcastInvals++
	default:
		e.event(events.WriteMissUncached)
	}
	e.emit(bus.OpMemRead)
	e.emit(bus.OpWriteThrough)
	e.invalidateOthers(id, c)
	e.makeSole(id, c)
	e.insertReplacer(c, block, id)
}

// invalidateOthers drops every other copy, remembering the victims as
// snarfers for the next bus read of the block.
func (e *ReadBroadcast) invalidateOthers(id blockid.ID, c int) {
	sh := &e.st.sharers[id]
	for h := sh.Next(0); h >= 0; h = sh.Next(h + 1) {
		if h != c {
			e.st.snarfers[id].Add(h)
			if e.replacers != nil {
				e.replacers[h].Remove(id)
			}
		}
	}
	keep := sh.Contains(c)
	sh.Clear()
	if keep {
		sh.Add(c)
	}
}

func (e *ReadBroadcast) makeSole(id blockid.ID, c int) {
	e.st.sharers[id].Clear()
	e.st.sharers[id].Add(c)
	e.st.snarfers[id].Remove(c)
	e.st.dirty[id] = true
	e.st.owner[id] = int32(c)
}

// fillWithSnarf installs the block in cache c and, because the fill's data
// crossed the bus, in every waiting snarfer as well.
//
// The loop re-indexes e.st on every step: dropVictim may grow the state
// arrays (reallocating them), so no element pointer is held across it.
func (e *ReadBroadcast) fillWithSnarf(c int, block uint64, id blockid.ID) {
	e.st.sharers[id].Add(c)
	e.st.snarfers[id].Remove(c)
	for h := e.st.snarfers[id].Next(0); h >= 0; h = e.st.snarfers[id].Next(h + 1) {
		e.st.sharers[id].Add(h)
		if e.replacers != nil {
			// The snarfed copy occupies a frame in h's cache too.
			if victim, evicted := e.replacers[h].Insert(block, id); evicted {
				e.dropVictim(h, victim)
			}
		}
	}
	e.stats.Snarfs += uint64(e.st.snarfers[id].Count())
	e.st.snarfers[id].Clear()
	e.insertReplacer(c, block, id)
}

func (e *ReadBroadcast) insertReplacer(c int, block uint64, id blockid.ID) {
	if e.replacers == nil {
		return
	}
	if victim, evicted := e.replacers[c].Insert(block, id); evicted {
		e.dropVictim(c, victim)
	}
}

// dropVictim removes an evicted block from cache c's ground truth;
// write-through caches evict silently.
func (e *ReadBroadcast) dropVictim(c int, victim blockid.ID) {
	e.stats.Evictions++
	e.st.ensure(victim)
	e.st.sharers[victim].Remove(c)
	e.st.snarfers[victim].Remove(c)
	if e.st.dirty[victim] && int(e.st.owner[victim]) == c {
		e.st.dirty[victim] = false
		e.st.owner[victim] = -1
	}
}

func (e *ReadBroadcast) touch(c int, id blockid.ID) {
	if e.replacers != nil {
		e.replacers[c].Touch(id)
	}
}

// CheckInvariants implements Engine.
func (e *ReadBroadcast) CheckInvariants() error {
	// Fully evicted slots have dirty == false and empty snarfers, so they
	// never reach an error arm.
	for i := range e.st.sharers {
		if e.st.dirty[i] && e.st.sharers[i].Count() != 1 {
			return fmt.Errorf("ReadBroadcast: block %#x written-state with %d holders", e.tab.Block(blockid.ID(i)), e.st.sharers[i].Count())
		}
		var bad int = -1
		e.st.snarfers[i].ForEach(func(h int) bool {
			if e.st.sharers[i].Contains(h) {
				bad = h
				return false
			}
			return true
		})
		if bad >= 0 {
			return fmt.Errorf("ReadBroadcast: block %#x cache %d both holder and snarfer", e.tab.Block(blockid.ID(i)), bad)
		}
	}
	return nil
}
