package coherence

import (
	"fmt"

	"dirsim/internal/bitset"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// ReadBroadcast is the Rudolph–Segall read-broadcast protocol (the paper's
// reference [6]): a write-through invalidation scheme in which a cache
// whose copy was invalidated snarfs the data the next time any other cache
// reads the block over the bus — the read reply is a broadcast, so the
// refill is free. One bus read after a write repairs *every* invalidated
// copy at once, which collapses the read-miss chains invalidation
// protocols otherwise suffer on widely read-shared data.
//
// The engine extends the WTI state-change model with a per-block set of
// "snarfers": caches that held the block when it was last invalidated.
// Their copies reappear on the next bus fill. Because this changes the
// state-change model itself, ReadBroadcast's event frequencies differ from
// the Dir0B/WTI family — the point of the optimisation.
type ReadBroadcast struct {
	cfg       Config
	stats     Stats
	state     map[uint64]*rbState
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

// rbState tracks holders, the virtual written-state, and the caches whose
// invalidated copies are waiting to snarf the next bus read.
type rbState struct {
	sharers  bitset.Set
	dirty    bool // written and not since shared (memory stays current)
	owner    int
	snarfers bitset.Set
}

var _ Engine = (*ReadBroadcast)(nil)

// NewReadBroadcast returns a read-broadcast engine.
func NewReadBroadcast(cfg Config) (*ReadBroadcast, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &ReadBroadcast{cfg: cfg, state: map[uint64]*rbState{}, replacers: repl}, nil
}

// Name implements Engine.
func (e *ReadBroadcast) Name() string { return "ReadBroadcast" }

// Caches implements Engine.
func (e *ReadBroadcast) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *ReadBroadcast) Stats() *Stats { return &e.stats }

// ResetStats implements Engine.
func (e *ReadBroadcast) ResetStats() { e.stats = Stats{} }

func (e *ReadBroadcast) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
}

func (e *ReadBroadcast) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	switch op {
	case bus.OpMemRead, bus.OpWriteBack, bus.OpWriteThrough:
		e.stats.MemAccesses++
	}
	e.txn = true
}

func (e *ReadBroadcast) ensure(block uint64) *rbState {
	bs := e.state[block]
	if bs == nil {
		bs = &rbState{owner: -1}
		e.state[block] = bs
	}
	return bs
}

// Access implements Engine.
func (e *ReadBroadcast) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, first)
	case trace.Write:
		e.write(c, block, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *ReadBroadcast) read(c int, block uint64, first bool) {
	bs := e.state[block]
	if bs != nil && bs.sharers.Contains(c) {
		e.event(events.ReadHit)
		e.touch(c, block)
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fillWithSnarf(c, block)
		return
	}
	switch {
	case bs != nil && bs.dirty:
		e.event(events.ReadMissDirty)
		bs.dirty = false
		bs.owner = -1
	case bs != nil && !bs.sharers.Empty():
		e.event(events.ReadMissClean)
	default:
		e.event(events.ReadMissUncached)
	}
	// Memory is current (write-through); one bus read serves the
	// requester and every waiting snarfer.
	e.emit(bus.OpMemRead)
	e.fillWithSnarf(c, block)
}

func (e *ReadBroadcast) write(c int, block uint64, first bool) {
	bs := e.state[block]
	holds := bs != nil && bs.sharers.Contains(c)
	if holds {
		e.touch(c, block)
		if bs.dirty {
			e.event(events.WriteHitDirty)
		} else {
			others := bs.sharers.CountExcluding(c)
			e.stats.InvalFanout.Observe(others)
			if others == 0 {
				e.event(events.WriteHitCleanSole)
			} else {
				e.event(events.WriteHitCleanShared)
				e.stats.InvalEvents++
				e.stats.BroadcastInvals++
			}
		}
		e.emit(bus.OpWriteThrough)
		e.invalidateOthers(bs, block, c)
		e.makeSole(bs, c)
		return
	}
	if first {
		e.event(events.WriteMissFirst)
		bs = e.ensure(block)
		e.makeSole(bs, c)
		e.insertReplacer(c, block)
		return
	}
	switch {
	case bs != nil && bs.dirty:
		e.event(events.WriteMissDirty)
	case bs != nil && !bs.sharers.Empty():
		e.event(events.WriteMissClean)
		e.stats.InvalFanout.Observe(bs.sharers.Count())
		e.stats.InvalEvents++
		e.stats.BroadcastInvals++
	default:
		e.event(events.WriteMissUncached)
	}
	e.emit(bus.OpMemRead)
	e.emit(bus.OpWriteThrough)
	if bs != nil {
		e.invalidateOthers(bs, block, c)
	}
	bs = e.ensure(block)
	e.makeSole(bs, c)
	e.insertReplacer(c, block)
}

// invalidateOthers drops every other copy, remembering the victims as
// snarfers for the next bus read of the block.
func (e *ReadBroadcast) invalidateOthers(bs *rbState, block uint64, c int) {
	for h := bs.sharers.Next(0); h >= 0; h = bs.sharers.Next(h + 1) {
		if h != c {
			bs.snarfers.Add(h)
			if e.replacers != nil {
				e.replacers[h].Remove(block)
			}
		}
	}
	keep := bs.sharers.Contains(c)
	bs.sharers.Clear()
	if keep {
		bs.sharers.Add(c)
	}
}

func (e *ReadBroadcast) makeSole(bs *rbState, c int) {
	bs.sharers.Clear()
	bs.sharers.Add(c)
	bs.snarfers.Remove(c)
	bs.dirty = true
	bs.owner = c
}

// fillWithSnarf installs the block in cache c and, because the fill's data
// crossed the bus, in every waiting snarfer as well.
func (e *ReadBroadcast) fillWithSnarf(c int, block uint64) {
	bs := e.ensure(block)
	bs.sharers.Add(c)
	bs.snarfers.Remove(c)
	for h := bs.snarfers.Next(0); h >= 0; h = bs.snarfers.Next(h + 1) {
		bs.sharers.Add(h)
		if e.replacers != nil {
			// The snarfed copy occupies a frame in h's cache too.
			if victim, evicted := e.replacers[h].Insert(block); evicted {
				e.dropVictim(h, victim)
			}
		}
	}
	e.stats.Snarfs += uint64(bs.snarfers.Count())
	bs.snarfers.Clear()
	e.insertReplacer(c, block)
}

func (e *ReadBroadcast) insertReplacer(c int, block uint64) {
	if e.replacers == nil {
		return
	}
	if victim, evicted := e.replacers[c].Insert(block); evicted {
		e.dropVictim(c, victim)
	}
}

// dropVictim removes an evicted block from cache c's ground truth;
// write-through caches evict silently.
func (e *ReadBroadcast) dropVictim(c int, victim uint64) {
	e.stats.Evictions++
	vs := e.state[victim]
	if vs == nil {
		return
	}
	vs.sharers.Remove(c)
	vs.snarfers.Remove(c)
	if vs.dirty && vs.owner == c {
		vs.dirty = false
		vs.owner = -1
	}
	if vs.sharers.Empty() && vs.snarfers.Empty() {
		delete(e.state, victim)
	}
}

func (e *ReadBroadcast) touch(c int, block uint64) {
	if e.replacers != nil {
		e.replacers[c].Touch(block)
	}
}

// CheckInvariants implements Engine.
func (e *ReadBroadcast) CheckInvariants() error {
	for block, bs := range e.state {
		if bs.dirty && bs.sharers.Count() != 1 {
			return fmt.Errorf("ReadBroadcast: block %#x written-state with %d holders", block, bs.sharers.Count())
		}
		var bad int = -1
		bs.snarfers.ForEach(func(h int) bool {
			if bs.sharers.Contains(h) {
				bad = h
				return false
			}
			return true
		})
		if bad >= 0 {
			return fmt.Errorf("ReadBroadcast: block %#x cache %d both holder and snarfer", block, bad)
		}
	}
	return nil
}
