package coherence

import (
	"math/rand"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

func TestMOESIOwnedStateAvoidsWriteBackOnReadHandoff(t *testing.T) {
	moesi := must(NewMOESI(cfg4()))
	mesi := must(NewMESI(cfg4()))
	f := newFeeder(moesi, mesi)
	f.write(0, 1) // modified at 0 (first ref)
	f.read(1, 1)  // MESI: owner flushes; MOESI: cache-to-cache, stays Owned
	f.read(2, 1)  // MOESI: owner still supplies; memory still stale
	sm, se := moesi.Stats(), mesi.Stats()
	if sm.Ops[bus.OpWriteBack] != 0 {
		t.Fatalf("MOESI wrote back %d times on read hand-offs", sm.Ops[bus.OpWriteBack])
	}
	if se.Ops[bus.OpWriteBack] != 1 {
		t.Fatalf("MESI write-backs = %d, want 1", se.Ops[bus.OpWriteBack])
	}
	// MOESI classifies both later reads as dirty misses (memory stale).
	if sm.Events[events.ReadMissDirty] != 2 {
		t.Fatalf("MOESI rm-drty = %d, want 2", sm.Events[events.ReadMissDirty])
	}
	if se.Events[events.ReadMissDirty] != 1 || se.Events[events.ReadMissClean] != 1 {
		t.Fatalf("MESI events = %v", se.Events)
	}
	if err := moesi.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMOESIOwnerEvictionFlushes(t *testing.T) {
	e := must(NewMOESI(finCfg()))
	f := newFeeder(e)
	f.write(0, 0)
	f.read(1, 0) // dirty sharing: 0 owns, 1 shares
	for b := uint64(4); b <= 40; b += 4 {
		f.read(0, b) // push block 0 out of cache 0 (the owner)
	}
	st := e.Stats()
	if st.EvictionWriteBacks == 0 {
		t.Fatal("owner eviction did not flush the stale block")
	}
	// Cache 1 still holds a (current) copy.
	f.read(1, 0)
	if st.Events[events.ReadHit] == 0 {
		t.Fatal("sharer lost its copy on owner eviction")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMOESIWriteToOwnedSharedInvalidates(t *testing.T) {
	e := must(NewMOESI(cfg4()))
	f := newFeeder(e)
	f.write(0, 1)
	f.read(1, 1)  // dirty sharing
	f.write(0, 1) // owner rewrites: must invalidate cache 1
	st := e.Stats()
	wantOp(t, st, bus.OpBroadcastInvalidate, 1)
	f.read(1, 1)
	if st.Events[events.ReadMissDirty] != 2 {
		t.Fatalf("events = %v", st.Events)
	}
}

func TestMOESISavesMemoryBandwidthOnMigratoryReads(t *testing.T) {
	moesi := must(NewMOESI(cfg4()))
	mesi := must(NewMESI(cfg4()))
	f := newFeeder(moesi, mesi)
	rng := rand.New(rand.NewSource(21))
	// Producer writes, several consumers read, repeat: the Owned state
	// removes the write-back from every hand-off. Under the paper's bus
	// pricing a write-back (4 cycles, data piggybacked) is actually
	// cheaper than a cache supply (5), so MOESI's gain shows up as
	// memory bandwidth, not bus occupancy — assert exactly that.
	for round := 0; round < 5000; round++ {
		b := uint64(rng.Intn(16))
		f.write(int(b)%4, b)
		f.read(rng.Intn(4), b)
		f.read(rng.Intn(4), b)
	}
	sm, se := moesi.Stats(), mesi.Stats()
	if sm.Ops[bus.OpWriteBack] >= se.Ops[bus.OpWriteBack] {
		t.Errorf("MOESI write-backs %d not below MESI %d",
			sm.Ops[bus.OpWriteBack], se.Ops[bus.OpWriteBack])
	}
	if sm.MemAccesses >= se.MemAccesses/2 {
		t.Errorf("MOESI memory accesses %d not well below MESI %d",
			sm.MemAccesses, se.MemAccesses)
	}
	// Bus occupancy stays in the same ballpark (within 25%).
	m := bus.Pipelined()
	ratio := sm.CyclesPerRef(m) / se.CyclesPerRef(m)
	if ratio > 1.25 {
		t.Errorf("MOESI/MESI bus cycles = %.2f, want ≈1", ratio)
	}
}

func TestMOESIByName(t *testing.T) {
	e, err := NewByName("moesi", cfg4())
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "MOESI" {
		t.Errorf("Name = %s", e.Name())
	}
}

// moesiOracle: holders + stale memory + owner, with MOESI's hand-offs.
type moesiOracle struct {
	holders map[uint64]map[int]bool
	stale   map[uint64]int // block → owner, present iff memory stale
}

func newMOESIOracle() *moesiOracle {
	return &moesiOracle{holders: map[uint64]map[int]bool{}, stale: map[uint64]int{}}
}

func (o *moesiOracle) hold(block uint64, c int) {
	if o.holders[block] == nil {
		o.holders[block] = map[int]bool{}
	}
	o.holders[block][c] = true
}

func (o *moesiOracle) predict(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if kind == trace.Instr {
		return events.Instr
	}
	hs := o.holders[block]
	owner, isStale := o.stale[block]
	holds := hs[c]
	switch kind {
	case trace.Read:
		if holds {
			return events.ReadHit
		}
		var ev events.Type
		switch {
		case first:
			ev = events.ReadMissFirst
		case isStale:
			ev = events.ReadMissDirty // owner supplies, stays Owned
		case len(hs) > 0:
			ev = events.ReadMissClean
		default:
			ev = events.ReadMissUncached
		}
		o.hold(block, c)
		return ev
	default:
		others := len(hs)
		if holds {
			others--
		}
		var ev events.Type
		switch {
		case holds && isStale && owner == c && others == 0:
			return events.WriteHitDirty
		case holds && others == 0:
			ev = events.WriteHitCleanSole
		case holds && isStale:
			ev = events.WriteHitDirty // Owned with sharers
		case holds:
			ev = events.WriteHitCleanShared
		case first:
			ev = events.WriteMissFirst
		case isStale:
			ev = events.WriteMissDirty
		case len(hs) > 0:
			ev = events.WriteMissClean
		default:
			ev = events.WriteMissUncached
		}
		o.holders[block] = map[int]bool{c: true}
		o.stale[block] = c
		return ev
	}
}

func TestOracleMOESI(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewMOESI(Config{Caches: 5}) },
		func() oracle { return newMOESIOracle() })
}

func TestExhaustiveMOESI(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	exhaustCheck(t, 9,
		func() (Engine, error) { return NewMOESI(Config{Caches: 2}) },
		func() oracle { return newMOESIOracle() })
}
