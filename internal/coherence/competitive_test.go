package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dirsim/internal/bus"
	"dirsim/internal/events"
)

func TestCompetitiveValidation(t *testing.T) {
	if _, err := NewCompetitive(0, cfg4()); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := NewCompetitive(2, Config{}); err == nil {
		t.Error("invalid machine config accepted")
	}
	e := must(NewCompetitive(3, cfg4()))
	if e.Name() != "Competitive3" || e.Threshold() != 3 {
		t.Errorf("engine = %s/%d", e.Name(), e.Threshold())
	}
}

func TestCompetitiveSelfInvalidatesAtThreshold(t *testing.T) {
	e := must(NewCompetitive(2, cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	// Cache 0 writes twice: cache 1 absorbs two updates, hits the
	// threshold on the second and drops its copy.
	f.write(0, 1) // update #1 reaches cache 1
	st := e.Stats()
	wantOp(t, st, bus.OpWriteUpdate, 1)
	f.write(0, 1) // update #2: cache 1 self-invalidates
	wantOp(t, st, bus.OpWriteUpdate, 2)
	if st.PointerEvictions != 1 {
		t.Fatalf("drops = %d, want 1", st.PointerEvictions)
	}
	// Further writes are local: no more updates.
	f.write(0, 1)
	wantOp(t, st, bus.OpWriteUpdate, 2)
	wantEvent(t, st, events.WriteHitLocal, 1)
	// Cache 1 re-reading misses (copy gone), supplied by cache 0.
	f.read(1, 1)
	wantEvent(t, st, events.ReadMissDirty, 1)
	wantOp(t, st, bus.OpCacheRead, 1)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompetitiveLocalTouchResetsCounter(t *testing.T) {
	e := must(NewCompetitive(2, cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.write(0, 1) // counter(1) = 1
	f.read(1, 1)  // cache 1 touches: counter resets, still a hit
	st := e.Stats()
	wantEvent(t, st, events.ReadHit, 1)
	f.write(0, 1) // counter(1) = 1 again — no drop
	f.write(0, 1) // counter(1) = 2 — drop
	if st.PointerEvictions != 1 {
		t.Fatalf("drops = %d, want 1", st.PointerEvictions)
	}
	if st.Ops[bus.OpWriteUpdate] != 3 {
		t.Fatalf("updates = %d, want 3 (active sharer keeps receiving them)", st.Ops[bus.OpWriteUpdate])
	}
}

// The pathology competitive update exists for: a departed sharer costs
// Dragon one update per write forever, but Competitive_k at most k.
func TestCompetitiveBoundsDepartedSharerCost(t *testing.T) {
	dragon := must(NewDragon(cfg4()))
	comp := must(NewCompetitive(4, cfg4()))
	f := newFeeder(dragon, comp)
	f.read(1, 1) // cache 1 touches the block once, then leaves forever
	for i := 0; i < 1000; i++ {
		f.write(0, 1)
	}
	if got := dragon.Stats().Ops[bus.OpWriteUpdate]; got != 1000 {
		t.Fatalf("Dragon updates = %d, want 1000", got)
	}
	if got := comp.Stats().Ops[bus.OpWriteUpdate]; got > 4 {
		t.Fatalf("Competitive4 updates = %d, want ≤4", got)
	}
}

// With a huge threshold, competitive update degenerates to Dragon exactly.
func TestCompetitiveLargeThresholdEqualsDragon(t *testing.T) {
	dragon := must(NewDragon(cfg4()))
	comp := must(NewCompetitive(1<<30, cfg4()))
	f := newFeeder(dragon, comp)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 30000; i++ {
		c := rng.Intn(4)
		b := uint64(rng.Intn(32))
		if rng.Intn(4) == 0 {
			f.write(c, b)
		} else {
			f.read(c, b)
		}
	}
	if dragon.Stats().Events != comp.Stats().Events {
		t.Fatal("event frequencies differ from Dragon at k=∞")
	}
	if dragon.Stats().Ops != comp.Stats().Ops {
		t.Fatal("op counts differ from Dragon at k=∞")
	}
}

func TestCompetitiveByName(t *testing.T) {
	e, err := NewByName("competitive8", cfg4())
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "Competitive8" {
		t.Errorf("Name = %s", e.Name())
	}
	if _, err := NewByName("competitive0", cfg4()); err == nil {
		t.Error("competitive0 accepted")
	}
	if _, err := NewByName("competitivex", cfg4()); err == nil {
		t.Error("competitivex accepted")
	}
}

// Property: invariants hold and the update traffic is bounded by Dragon's
// on any stream (competitiveness).
func TestQuickCompetitiveNeverExceedsDragonUpdates(t *testing.T) {
	f := func(raw []uint32, kRaw uint8) bool {
		k := 1 + int(kRaw%6)
		dragon, err := NewDragon(Config{Caches: 4})
		if err != nil {
			return false
		}
		comp, err := NewCompetitive(k, Config{Caches: 4})
		if err != nil {
			return false
		}
		replay([]Engine{dragon, comp}, raw, 4, 16)
		if comp.Stats().Ops[bus.OpWriteUpdate] > dragon.Stats().Ops[bus.OpWriteUpdate] {
			return false
		}
		return comp.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Finite mode: evicting the last holder of a stale block writes it back.
func TestCompetitiveFiniteWriteBack(t *testing.T) {
	e := must(NewCompetitive(2, finCfg()))
	f := newFeeder(e)
	f.write(0, 0)
	for b := uint64(4); b <= 40; b += 4 {
		f.read(0, b)
	}
	if e.Stats().EvictionWriteBacks == 0 {
		t.Fatal("stale block evicted silently")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Sweep shape: on the POPS-like drift pattern (writers migrate away from
// readers), smaller thresholds trade update traffic for extra misses.
func TestCompetitiveThresholdSweep(t *testing.T) {
	run := func(k int) *Stats {
		e := must(NewCompetitive(k, cfg4()))
		f := newFeeder(e)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 40000; i++ {
			b := uint64(rng.Intn(16))
			writer := int(b) % 4
			if rng.Intn(3) == 0 {
				f.write(writer, b)
			} else {
				f.read(rng.Intn(4), b)
			}
		}
		return e.Stats()
	}
	small, large := run(1), run(64)
	if small.Ops[bus.OpWriteUpdate] >= large.Ops[bus.OpWriteUpdate] {
		t.Errorf("k=1 updates %d not below k=64 %d",
			small.Ops[bus.OpWriteUpdate], large.Ops[bus.OpWriteUpdate])
	}
	if small.Events.ReadMisses() <= large.Events.ReadMisses() {
		t.Errorf("k=1 misses %d not above k=64 %d",
			small.Events.ReadMisses(), large.Events.ReadMisses())
	}
}
