package coherence

import (
	"dirsim/internal/bus"
)

// Berkeley estimates the Berkeley Ownership snoopy protocol exactly the way
// Section 5 does: "the cost model for the Berkeley scheme is derived from
// the Dir0B scheme by trivially setting the directory access cost to 0 bus
// cycles", because a snooping cache learns from its own block state whether
// an invalidation is needed. (Berkeley's other refinement — a dirty block
// being supplied by the owning cache instead of memory — does not affect
// the pipelined-bus metric, as the paper notes.)
//
// Berkeley therefore wraps the Dir0B engine: identical state-change model,
// identical events and operations; only the pricing changes, which it
// declares through the ModelAdjuster interface.
type Berkeley struct {
	*DirEngine
}

var (
	_ Engine        = (*Berkeley)(nil)
	_ ModelAdjuster = (*Berkeley)(nil)
)

// NewBerkeley returns the Berkeley Ownership cost-model engine.
func NewBerkeley(cfg Config) (*Berkeley, error) {
	inner, err := NewDir0B(cfg)
	if err != nil {
		return nil, err
	}
	inner.name = "Berkeley"
	return &Berkeley{DirEngine: inner}, nil
}

// AdjustModel implements ModelAdjuster: directory checks are free because
// the information lives in the snooping caches.
func (b *Berkeley) AdjustModel(m bus.CostModel) bus.CostModel {
	return m.WithDirCheckCost(0)
}
