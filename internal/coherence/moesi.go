package coherence

import (
	"fmt"

	"dirsim/internal/bitset"
	"dirsim/internal/blockid"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// MOESI is the five-state snoopy invalidation protocol: MESI plus an Owned
// state that permits *dirty sharing*. When another cache reads a modified
// block, the owner supplies it cache-to-cache and keeps responsibility for
// the (still stale) memory copy instead of writing back — the write-back
// happens only when the owner finally evicts the block or another writer
// takes it. On migratory and producer-consumer data this removes the
// write-back from every hand-off that MESI pays for.
//
// Ground truth therefore differs from the MESI/Dir0B family: a block can be
// shared while memory is stale, with a designated owner. The event
// classification reflects it — every read miss to such a block is
// rm-blk-drty, no matter how many readers have joined since the write.
type MOESI struct {
	cfg       Config
	stats     Stats
	tab       *blockid.Table
	st        moesiStates
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

// moesiStates is the ground truth held as parallel arrays indexed by block
// id: holders, whether memory is stale, and which holder owns the stale
// data. The protocol keeps "empty sharers ⇒ memory current" (the owner's
// eviction flushes), so an empty slot is indistinguishable from an absent
// entry of the map representation this replaced.
type moesiStates struct {
	sharers  []bitset.Set
	memStale []bool
	owner    []int32 // valid when memStale
}

func (t *moesiStates) ensure(id blockid.ID) {
	if int(id) < len(t.sharers) {
		return
	}
	n := int(id) + 1 + len(t.sharers)
	sharers := make([]bitset.Set, n)
	copy(sharers, t.sharers)
	memStale := make([]bool, n)
	copy(memStale, t.memStale)
	owner := make([]int32, n)
	copy(owner, t.owner)
	for i := len(t.owner); i < n; i++ {
		owner[i] = -1
	}
	t.sharers, t.memStale, t.owner = sharers, memStale, owner
}

var (
	_ Engine        = (*MOESI)(nil)
	_ IndexedEngine = (*MOESI)(nil)
)

// NewMOESI returns a MOESI engine.
func NewMOESI(cfg Config) (*MOESI, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &MOESI{cfg: cfg, tab: blockid.New(), replacers: repl}, nil
}

// Name implements Engine.
func (e *MOESI) Name() string { return "MOESI" }

// Caches implements Engine.
func (e *MOESI) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *MOESI) Stats() *Stats { return &e.stats }

// ResetStats implements Engine.
func (e *MOESI) ResetStats() { e.stats = Stats{} }

// AccessInstrs implements IndexedEngine: n coalesced instruction fetches.
func (e *MOESI) AccessInstrs(n uint64) {
	e.stats.Refs += n
	e.stats.Events.Add(events.Instr, n)
}

func (e *MOESI) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
}

func (e *MOESI) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	switch op {
	case bus.OpMemRead, bus.OpWriteBack:
		e.stats.MemAccesses++
	}
	e.txn = true
}

// BindBlocks implements IndexedEngine.
func (e *MOESI) BindBlocks(t *blockid.Table) bool {
	if e.tab.Len() > 0 {
		return false
	}
	e.tab = t
	return true
}

// Access implements Engine: intern the block and delegate to AccessID.
func (e *MOESI) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	var id blockid.ID
	if kind != trace.Instr {
		id, _ = e.tab.Intern(block)
	}
	return e.AccessID(c, kind, block, id, first)
}

// AccessID implements IndexedEngine.
func (e *MOESI) AccessID(c int, kind trace.Kind, block uint64, id blockid.ID, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, id, first)
	case trace.Write:
		e.write(c, block, id, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *MOESI) read(c int, block uint64, id blockid.ID, first bool) {
	e.st.ensure(id)
	if e.st.sharers[id].Contains(c) {
		e.event(events.ReadHit)
		e.touch(c, id)
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fill(c, block, id)
		return
	}
	switch {
	case e.st.memStale[id]:
		// The owner supplies the block cache-to-cache and stays Owned;
		// memory remains stale — MOESI's defining move.
		e.event(events.ReadMissDirty)
		e.emit(bus.OpCacheRead)
	case !e.st.sharers[id].Empty():
		// Illinois-style cache-to-cache supply of clean data.
		e.event(events.ReadMissClean)
		e.emit(bus.OpCacheRead)
	default:
		e.event(events.ReadMissUncached)
		e.emit(bus.OpMemRead)
	}
	e.fill(c, block, id)
}

func (e *MOESI) write(c int, block uint64, id blockid.ID, first bool) {
	e.st.ensure(id)
	if e.st.sharers[id].Contains(c) {
		e.touch(c, id)
		others := e.st.sharers[id].CountExcluding(c)
		switch {
		case e.st.memStale[id] && int(e.st.owner[id]) == c && others == 0:
			// Modified: silent.
			e.event(events.WriteHitDirty)
			return
		case others == 0:
			// Exclusive: silent upgrade (memory current, sole copy).
			e.event(events.WriteHitCleanSole)
			e.st.memStale[id] = true
			e.st.owner[id] = int32(c)
			return
		default:
			// Shared or Owned-with-sharers: one invalidation broadcast.
			e.stats.InvalFanout.Observe(others)
			if e.st.memStale[id] {
				// An Owned block being rewritten: classified like a
				// dirty hit but the sharers must still go.
				e.event(events.WriteHitDirty)
			} else {
				e.event(events.WriteHitCleanShared)
			}
			e.emit(bus.OpBroadcastInvalidate)
			e.stats.InvalEvents++
			e.stats.BroadcastInvals++
			e.dropOthers(id, c)
			e.st.memStale[id] = true
			e.st.owner[id] = int32(c)
			return
		}
	}
	if first {
		e.event(events.WriteMissFirst)
		e.st.sharers[id].Add(c)
		e.st.memStale[id] = true
		e.st.owner[id] = int32(c)
		e.insertReplacer(c, block, id)
		return
	}
	switch {
	case e.st.memStale[id]:
		// Read-for-ownership served by the owner; its copy and every
		// other sharer's are invalidated by the snooped request.
		e.event(events.WriteMissDirty)
		e.emit(bus.OpCacheRead)
	case !e.st.sharers[id].Empty():
		e.event(events.WriteMissClean)
		e.emit(bus.OpCacheRead)
	default:
		e.event(events.WriteMissUncached)
		e.emit(bus.OpMemRead)
	}
	e.dropOthers(id, c)
	e.st.sharers[id].Add(c)
	e.st.memStale[id] = true
	e.st.owner[id] = int32(c)
	e.insertReplacer(c, block, id)
}

// dropOthers removes every copy except cache c's (snooping delivers the
// invalidation for free).
func (e *MOESI) dropOthers(id blockid.ID, c int) {
	sh := &e.st.sharers[id]
	for h := sh.Next(0); h >= 0; h = sh.Next(h + 1) {
		if h != c && e.replacers != nil {
			e.replacers[h].Remove(id)
		}
	}
	keep := sh.Contains(c)
	sh.Clear()
	if keep {
		sh.Add(c)
	}
}

func (e *MOESI) fill(c int, block uint64, id blockid.ID) {
	e.st.sharers[id].Add(c)
	e.insertReplacer(c, block, id)
}

func (e *MOESI) insertReplacer(c int, block uint64, id blockid.ID) {
	if e.replacers == nil {
		return
	}
	victim, evicted := e.replacers[c].Insert(block, id)
	if !evicted {
		return
	}
	e.stats.Evictions++
	e.st.ensure(victim)
	e.st.sharers[victim].Remove(c)
	if e.st.memStale[victim] && int(e.st.owner[victim]) == c {
		// The owner leaves: flush, and if sharers remain, ownership
		// passes to one of them (memory is now current, so it need
		// not — Owned exists to avoid this write-back on *reads*, but
		// an eviction forces it).
		e.emit(bus.OpWriteBack)
		e.stats.EvictionWriteBacks++
		e.st.memStale[victim] = false
		e.st.owner[victim] = -1
	}
}

func (e *MOESI) touch(c int, id blockid.ID) {
	if e.replacers != nil {
		e.replacers[c].Touch(id)
	}
}

// CheckInvariants implements Engine.
func (e *MOESI) CheckInvariants() error {
	// Unused and fully evicted slots have memStale == false (the owner's
	// eviction flushes), so only live blocks reach the error arm.
	for i := range e.st.sharers {
		if e.st.memStale[i] && !e.st.sharers[i].Contains(int(e.st.owner[i])) {
			return fmt.Errorf("MOESI: block %#x stale but owner %d holds no copy", e.tab.Block(blockid.ID(i)), e.st.owner[i])
		}
	}
	return nil
}
