package coherence

import (
	"fmt"

	"dirsim/internal/bitset"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// MOESI is the five-state snoopy invalidation protocol: MESI plus an Owned
// state that permits *dirty sharing*. When another cache reads a modified
// block, the owner supplies it cache-to-cache and keeps responsibility for
// the (still stale) memory copy instead of writing back — the write-back
// happens only when the owner finally evicts the block or another writer
// takes it. On migratory and producer-consumer data this removes the
// write-back from every hand-off that MESI pays for.
//
// Ground truth therefore differs from the MESI/Dir0B family: a block can be
// shared while memory is stale, with a designated owner. The event
// classification reflects it — every read miss to such a block is
// rm-blk-drty, no matter how many readers have joined since the write.
type MOESI struct {
	cfg       Config
	stats     Stats
	state     map[uint64]*moesiState
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

// moesiState is the ground truth for one block: holders, whether memory is
// stale, and which holder owns the stale data.
type moesiState struct {
	sharers  bitset.Set
	memStale bool
	owner    int // valid when memStale
}

var _ Engine = (*MOESI)(nil)

// NewMOESI returns a MOESI engine.
func NewMOESI(cfg Config) (*MOESI, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &MOESI{cfg: cfg, state: map[uint64]*moesiState{}, replacers: repl}, nil
}

// Name implements Engine.
func (e *MOESI) Name() string { return "MOESI" }

// Caches implements Engine.
func (e *MOESI) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *MOESI) Stats() *Stats { return &e.stats }

// ResetStats implements Engine.
func (e *MOESI) ResetStats() { e.stats = Stats{} }

func (e *MOESI) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
}

func (e *MOESI) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	switch op {
	case bus.OpMemRead, bus.OpWriteBack:
		e.stats.MemAccesses++
	}
	e.txn = true
}

func (e *MOESI) ensure(block uint64) *moesiState {
	bs := e.state[block]
	if bs == nil {
		bs = &moesiState{owner: -1}
		e.state[block] = bs
	}
	return bs
}

// Access implements Engine.
func (e *MOESI) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, first)
	case trace.Write:
		e.write(c, block, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *MOESI) read(c int, block uint64, first bool) {
	bs := e.state[block]
	if bs != nil && bs.sharers.Contains(c) {
		e.event(events.ReadHit)
		e.touch(c, block)
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fill(c, block)
		return
	}
	switch {
	case bs != nil && bs.memStale:
		// The owner supplies the block cache-to-cache and stays Owned;
		// memory remains stale — MOESI's defining move.
		e.event(events.ReadMissDirty)
		e.emit(bus.OpCacheRead)
	case bs != nil && !bs.sharers.Empty():
		// Illinois-style cache-to-cache supply of clean data.
		e.event(events.ReadMissClean)
		e.emit(bus.OpCacheRead)
	default:
		e.event(events.ReadMissUncached)
		e.emit(bus.OpMemRead)
	}
	e.fill(c, block)
}

func (e *MOESI) write(c int, block uint64, first bool) {
	bs := e.state[block]
	holds := bs != nil && bs.sharers.Contains(c)
	if holds {
		e.touch(c, block)
		others := bs.sharers.CountExcluding(c)
		switch {
		case bs.memStale && bs.owner == c && others == 0:
			// Modified: silent.
			e.event(events.WriteHitDirty)
			return
		case others == 0:
			// Exclusive: silent upgrade (memory current, sole copy).
			e.event(events.WriteHitCleanSole)
			bs.memStale = true
			bs.owner = c
			return
		default:
			// Shared or Owned-with-sharers: one invalidation broadcast.
			e.stats.InvalFanout.Observe(others)
			if bs.memStale {
				// An Owned block being rewritten: classified like a
				// dirty hit but the sharers must still go.
				e.event(events.WriteHitDirty)
			} else {
				e.event(events.WriteHitCleanShared)
			}
			e.emit(bus.OpBroadcastInvalidate)
			e.stats.InvalEvents++
			e.stats.BroadcastInvals++
			e.dropOthers(bs, block, c)
			bs.memStale = true
			bs.owner = c
			return
		}
	}
	if first {
		e.event(events.WriteMissFirst)
		bs = e.ensure(block)
		bs.sharers.Add(c)
		bs.memStale = true
		bs.owner = c
		e.insertReplacer(c, block)
		return
	}
	switch {
	case bs != nil && bs.memStale:
		// Read-for-ownership served by the owner; its copy and every
		// other sharer's are invalidated by the snooped request.
		e.event(events.WriteMissDirty)
		e.emit(bus.OpCacheRead)
	case bs != nil && !bs.sharers.Empty():
		e.event(events.WriteMissClean)
		e.emit(bus.OpCacheRead)
	default:
		e.event(events.WriteMissUncached)
		e.emit(bus.OpMemRead)
	}
	if bs != nil {
		e.dropOthers(bs, block, c)
	}
	bs = e.ensure(block)
	bs.sharers.Add(c)
	bs.memStale = true
	bs.owner = c
	e.insertReplacer(c, block)
}

// dropOthers removes every copy except cache c's (snooping delivers the
// invalidation for free).
func (e *MOESI) dropOthers(bs *moesiState, block uint64, c int) {
	for h := bs.sharers.Next(0); h >= 0; h = bs.sharers.Next(h + 1) {
		if h != c && e.replacers != nil {
			e.replacers[h].Remove(block)
		}
	}
	keep := bs.sharers.Contains(c)
	bs.sharers.Clear()
	if keep {
		bs.sharers.Add(c)
	}
}

func (e *MOESI) fill(c int, block uint64) {
	bs := e.ensure(block)
	bs.sharers.Add(c)
	e.insertReplacer(c, block)
}

func (e *MOESI) insertReplacer(c int, block uint64) {
	if e.replacers == nil {
		return
	}
	victim, evicted := e.replacers[c].Insert(block)
	if !evicted {
		return
	}
	e.stats.Evictions++
	vs := e.state[victim]
	if vs == nil {
		return
	}
	vs.sharers.Remove(c)
	if vs.memStale && vs.owner == c {
		// The owner leaves: flush, and if sharers remain, ownership
		// passes to one of them (memory is now current, so it need
		// not — Owned exists to avoid this write-back on *reads*, but
		// an eviction forces it).
		e.emit(bus.OpWriteBack)
		e.stats.EvictionWriteBacks++
		vs.memStale = false
		vs.owner = -1
	}
	if vs.sharers.Empty() && !vs.memStale {
		delete(e.state, victim)
	}
}

func (e *MOESI) touch(c int, block uint64) {
	if e.replacers != nil {
		e.replacers[c].Touch(block)
	}
}

// CheckInvariants implements Engine.
func (e *MOESI) CheckInvariants() error {
	for block, bs := range e.state {
		if bs.memStale {
			if !bs.sharers.Contains(bs.owner) {
				return fmt.Errorf("MOESI: block %#x stale but owner %d holds no copy", block, bs.owner)
			}
		}
	}
	return nil
}
