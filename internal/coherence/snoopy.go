package coherence

import (
	"fmt"

	"dirsim/internal/blockid"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// SnoopyInval is a generic snoopy invalidation protocol engine. The paper's
// Section 5 observation — that protocols sharing a state-change model have
// identical event frequencies and differ only in per-event costs — makes
// the whole family expressible as one engine parameterised by a per-event
// operation table. The family's state-change model is the classic
// multiple-readers/single-writer policy, with invalidation delivered for
// free by bus snooping.
//
// Three of the paper's referenced protocols are provided on top of it:
//
//   - WTI (write-through with invalidate): every write is a one-word
//     transfer to memory; misses are always served by memory.
//   - Write-Once (Goodman): the first write to a block writes through
//     (snoopers invalidate); subsequent writes stay local in the cache
//     (the Reserved→Dirty transition), and dirty blocks are supplied via
//     write-back.
//   - MESI (Illinois / Papamarcos-Patel): an Exclusive state lets a write
//     hit on a sole clean copy proceed silently; resident blocks are
//     supplied cache-to-cache; writes to Shared copies broadcast one
//     invalidation cycle.
type SnoopyInval struct {
	name string
	cfg  Config
	// table maps each event to the bus operations one occurrence costs.
	table map[events.Type][]bus.Op
	// writeBackOnEvict controls finite-cache behaviour: copy-back
	// protocols flush dirty victims; write-through protocols evict
	// silently (memory is already current).
	writeBackOnEvict bool

	stats     Stats
	tab       *blockid.Table
	state     blockStates
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

var (
	_ Engine        = (*SnoopyInval)(nil)
	_ IndexedEngine = (*SnoopyInval)(nil)
)

// NewSnoopyInval assembles a snoopy invalidation engine from a per-event
// operation table. Most callers want NewWTI, NewWriteOnce or NewMESI.
func NewSnoopyInval(name string, table map[events.Type][]bus.Op, writeBackOnEvict bool, cfg Config) (*SnoopyInval, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &SnoopyInval{
		name:             name,
		cfg:              cfg,
		table:            table,
		writeBackOnEvict: writeBackOnEvict,
		tab:              blockid.New(),
		replacers:        repl,
	}, nil
}

// NewWTI returns the Write-Through-With-Invalidate engine: all writes go to
// memory (one word each), all misses are served by memory (which is never
// stale), and other copies are invalidated by snooping the write for free.
// Write misses allocate, keeping the state-change model — and therefore
// the Table 4 event frequencies — identical to Dir0B's, as Section 5
// observes.
func NewWTI(cfg Config) (*SnoopyInval, error) {
	t := map[events.Type][]bus.Op{
		events.ReadMissClean:       {bus.OpMemRead},
		events.ReadMissDirty:       {bus.OpMemRead},
		events.ReadMissUncached:    {bus.OpMemRead},
		events.WriteHitDirty:       {bus.OpWriteThrough},
		events.WriteHitCleanSole:   {bus.OpWriteThrough},
		events.WriteHitCleanShared: {bus.OpWriteThrough},
		events.WriteMissClean:      {bus.OpMemRead, bus.OpWriteThrough},
		events.WriteMissDirty:      {bus.OpMemRead, bus.OpWriteThrough},
		events.WriteMissUncached:   {bus.OpMemRead, bus.OpWriteThrough},
	}
	return NewSnoopyInval("WTI", t, false, cfg)
}

// NewWriteOnce returns Goodman's write-once protocol: the first write to a
// resident block writes through one word (and snooping invalidates other
// copies); later writes dirty the block locally for free; a block dirty in
// another cache is supplied by write-back.
func NewWriteOnce(cfg Config) (*SnoopyInval, error) {
	t := map[events.Type][]bus.Op{
		events.ReadMissClean:       {bus.OpMemRead},
		events.ReadMissDirty:       {bus.OpWriteBack},
		events.ReadMissUncached:    {bus.OpMemRead},
		events.WriteHitCleanSole:   {bus.OpWriteThrough},
		events.WriteHitCleanShared: {bus.OpWriteThrough},
		// Reserved → Dirty is a local transition.
		events.WriteHitDirty:     nil,
		events.WriteMissClean:    {bus.OpMemRead, bus.OpWriteThrough},
		events.WriteMissDirty:    {bus.OpWriteBack, bus.OpWriteThrough},
		events.WriteMissUncached: {bus.OpMemRead, bus.OpWriteThrough},
	}
	return NewSnoopyInval("WriteOnce", t, true, cfg)
}

// NewMESI returns the Illinois protocol: resident blocks are supplied
// cache-to-cache (dirty ones with a concurrent write-back), an Exclusive
// state makes writes to sole clean copies free, and writes to Shared
// copies cost one broadcast invalidation cycle.
func NewMESI(cfg Config) (*SnoopyInval, error) {
	t := map[events.Type][]bus.Op{
		events.ReadMissClean:    {bus.OpCacheRead},
		events.ReadMissDirty:    {bus.OpWriteBack},
		events.ReadMissUncached: {bus.OpMemRead},
		// M and E write hits are silent.
		events.WriteHitDirty:     nil,
		events.WriteHitCleanSole: nil,
		// S write hit: broadcast the invalidation on the bus.
		events.WriteHitCleanShared: {bus.OpBroadcastInvalidate},
		// Read-for-ownership: the fetch broadcast invalidates as it goes.
		events.WriteMissClean:    {bus.OpCacheRead},
		events.WriteMissDirty:    {bus.OpWriteBack},
		events.WriteMissUncached: {bus.OpMemRead},
	}
	return NewSnoopyInval("MESI", t, true, cfg)
}

// Name implements Engine.
func (e *SnoopyInval) Name() string { return e.name }

// Caches implements Engine.
func (e *SnoopyInval) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *SnoopyInval) Stats() *Stats { return &e.stats }

// ResetStats implements Engine: tallies are zeroed, protocol state kept.
func (e *SnoopyInval) ResetStats() { e.stats = Stats{} }

// AccessInstrs implements IndexedEngine: n coalesced instruction fetches.
func (e *SnoopyInval) AccessInstrs(n uint64) {
	e.stats.Refs += n
	e.stats.Events.Add(events.Instr, n)
}

// event records the reference's Table 4 classification and emits its
// operations from the table.
func (e *SnoopyInval) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
	for _, op := range e.table[t] {
		e.emit(op)
	}
}

func (e *SnoopyInval) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	switch op {
	case bus.OpMemRead, bus.OpWriteBack, bus.OpWriteThrough:
		e.stats.MemAccesses++
	}
	e.txn = true
}

// BindBlocks implements IndexedEngine.
func (e *SnoopyInval) BindBlocks(t *blockid.Table) bool {
	if e.tab.Len() > 0 {
		return false
	}
	e.tab = t
	return true
}

// Access implements Engine: intern the block and delegate to AccessID.
func (e *SnoopyInval) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	var id blockid.ID
	if kind != trace.Instr {
		id, _ = e.tab.Intern(block)
	}
	return e.AccessID(c, kind, block, id, first)
}

// AccessID implements IndexedEngine.
func (e *SnoopyInval) AccessID(c int, kind trace.Kind, block uint64, id blockid.ID, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, id, first)
	case trace.Write:
		e.write(c, block, id, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *SnoopyInval) read(c int, block uint64, id blockid.ID, first bool) {
	e.state.ensure(id)
	st := &e.state
	if st.sharers[id].Contains(c) {
		e.event(events.ReadHit)
		e.touch(c, id)
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fill(c, block, id)
		return
	}
	switch {
	case st.dirty[id]:
		e.event(events.ReadMissDirty)
		st.dirty[id] = false
		st.owner[id] = -1
	case !st.sharers[id].Empty():
		e.event(events.ReadMissClean)
	default:
		e.event(events.ReadMissUncached)
	}
	e.fill(c, block, id)
}

func (e *SnoopyInval) write(c int, block uint64, id blockid.ID, first bool) {
	e.state.ensure(id)
	st := &e.state
	if st.sharers[id].Contains(c) {
		e.touch(c, id)
		if st.dirty[id] {
			e.event(events.WriteHitDirty)
		} else {
			others := st.sharers[id].CountExcluding(c)
			e.stats.InvalFanout.Observe(others)
			if others == 0 {
				e.event(events.WriteHitCleanSole)
			} else {
				e.event(events.WriteHitCleanShared)
				e.stats.InvalEvents++
				e.stats.BroadcastInvals++
			}
		}
		e.invalidateOthers(id, c)
		e.makeSole(id, c)
		return
	}
	if first {
		e.event(events.WriteMissFirst)
		e.makeSole(id, c)
		e.insertReplacer(c, block, id)
		return
	}
	switch {
	case st.dirty[id]:
		e.event(events.WriteMissDirty)
	case !st.sharers[id].Empty():
		e.event(events.WriteMissClean)
		e.stats.InvalFanout.Observe(st.sharers[id].Count())
		e.stats.InvalEvents++
		e.stats.BroadcastInvals++
	default:
		e.event(events.WriteMissUncached)
	}
	e.invalidateOthers(id, c)
	e.makeSole(id, c)
	e.insertReplacer(c, block, id)
}

// invalidateOthers drops every other copy; snooping makes the delivery
// free.
func (e *SnoopyInval) invalidateOthers(id blockid.ID, c int) {
	sh := &e.state.sharers[id]
	for h := sh.Next(0); h >= 0; h = sh.Next(h + 1) {
		if h != c && e.replacers != nil {
			e.replacers[h].Remove(id)
		}
	}
	keep := sh.Contains(c)
	sh.Clear()
	if keep {
		sh.Add(c)
	}
}

func (e *SnoopyInval) makeSole(id blockid.ID, c int) {
	st := &e.state
	st.sharers[id].Clear()
	st.sharers[id].Add(c)
	st.dirty[id] = true
	st.owner[id] = int32(c)
}

func (e *SnoopyInval) touch(c int, id blockid.ID) {
	if e.replacers != nil {
		e.replacers[c].Touch(id)
	}
}

func (e *SnoopyInval) fill(c int, block uint64, id blockid.ID) {
	e.state.sharers[id].Add(c)
	e.insertReplacer(c, block, id)
}

func (e *SnoopyInval) insertReplacer(c int, block uint64, id blockid.ID) {
	if e.replacers == nil {
		return
	}
	victim, evicted := e.replacers[c].Insert(block, id)
	if !evicted {
		return
	}
	e.stats.Evictions++
	e.state.ensure(victim)
	st := &e.state
	if st.sharers[victim].Empty() {
		return
	}
	if st.dirty[victim] && int(st.owner[victim]) == c {
		if e.writeBackOnEvict {
			e.emit(bus.OpWriteBack)
			e.stats.EvictionWriteBacks++
		}
		st.dirty[victim] = false
		st.owner[victim] = -1
	}
	st.sharers[victim].Remove(c)
}

// CheckInvariants implements Engine.
func (e *SnoopyInval) CheckInvariants() error {
	// Empty slots always have dirty == false (every path that drops the
	// last holder clears it), so unused ids never reach the error arms.
	for i := range e.state.sharers {
		if !e.state.dirty[i] {
			continue
		}
		sh := &e.state.sharers[i]
		if sh.Count() != 1 {
			return fmt.Errorf("%s: block %#x written-state with %d holders", e.name, e.tab.Block(blockid.ID(i)), sh.Count())
		}
		if sole, _ := sh.Sole(); sole != int(e.state.owner[i]) {
			return fmt.Errorf("%s: block %#x owner %d not the holder", e.name, e.tab.Block(blockid.ID(i)), e.state.owner[i])
		}
	}
	return nil
}
