package coherence

import (
	"fmt"

	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// SnoopyInval is a generic snoopy invalidation protocol engine. The paper's
// Section 5 observation — that protocols sharing a state-change model have
// identical event frequencies and differ only in per-event costs — makes
// the whole family expressible as one engine parameterised by a per-event
// operation table. The family's state-change model is the classic
// multiple-readers/single-writer policy, with invalidation delivered for
// free by bus snooping.
//
// Three of the paper's referenced protocols are provided on top of it:
//
//   - WTI (write-through with invalidate): every write is a one-word
//     transfer to memory; misses are always served by memory.
//   - Write-Once (Goodman): the first write to a block writes through
//     (snoopers invalidate); subsequent writes stay local in the cache
//     (the Reserved→Dirty transition), and dirty blocks are supplied via
//     write-back.
//   - MESI (Illinois / Papamarcos-Patel): an Exclusive state lets a write
//     hit on a sole clean copy proceed silently; resident blocks are
//     supplied cache-to-cache; writes to Shared copies broadcast one
//     invalidation cycle.
type SnoopyInval struct {
	name string
	cfg  Config
	// table maps each event to the bus operations one occurrence costs.
	table map[events.Type][]bus.Op
	// writeBackOnEvict controls finite-cache behaviour: copy-back
	// protocols flush dirty victims; write-through protocols evict
	// silently (memory is already current).
	writeBackOnEvict bool

	stats     Stats
	state     stateTable
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

var _ Engine = (*SnoopyInval)(nil)

// NewSnoopyInval assembles a snoopy invalidation engine from a per-event
// operation table. Most callers want NewWTI, NewWriteOnce or NewMESI.
func NewSnoopyInval(name string, table map[events.Type][]bus.Op, writeBackOnEvict bool, cfg Config) (*SnoopyInval, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &SnoopyInval{
		name:             name,
		cfg:              cfg,
		table:            table,
		writeBackOnEvict: writeBackOnEvict,
		state:            stateTable{},
		replacers:        repl,
	}, nil
}

// NewWTI returns the Write-Through-With-Invalidate engine: all writes go to
// memory (one word each), all misses are served by memory (which is never
// stale), and other copies are invalidated by snooping the write for free.
// Write misses allocate, keeping the state-change model — and therefore
// the Table 4 event frequencies — identical to Dir0B's, as Section 5
// observes.
func NewWTI(cfg Config) (*SnoopyInval, error) {
	t := map[events.Type][]bus.Op{
		events.ReadMissClean:       {bus.OpMemRead},
		events.ReadMissDirty:       {bus.OpMemRead},
		events.ReadMissUncached:    {bus.OpMemRead},
		events.WriteHitDirty:       {bus.OpWriteThrough},
		events.WriteHitCleanSole:   {bus.OpWriteThrough},
		events.WriteHitCleanShared: {bus.OpWriteThrough},
		events.WriteMissClean:      {bus.OpMemRead, bus.OpWriteThrough},
		events.WriteMissDirty:      {bus.OpMemRead, bus.OpWriteThrough},
		events.WriteMissUncached:   {bus.OpMemRead, bus.OpWriteThrough},
	}
	return NewSnoopyInval("WTI", t, false, cfg)
}

// NewWriteOnce returns Goodman's write-once protocol: the first write to a
// resident block writes through one word (and snooping invalidates other
// copies); later writes dirty the block locally for free; a block dirty in
// another cache is supplied by write-back.
func NewWriteOnce(cfg Config) (*SnoopyInval, error) {
	t := map[events.Type][]bus.Op{
		events.ReadMissClean:       {bus.OpMemRead},
		events.ReadMissDirty:       {bus.OpWriteBack},
		events.ReadMissUncached:    {bus.OpMemRead},
		events.WriteHitCleanSole:   {bus.OpWriteThrough},
		events.WriteHitCleanShared: {bus.OpWriteThrough},
		// Reserved → Dirty is a local transition.
		events.WriteHitDirty:     nil,
		events.WriteMissClean:    {bus.OpMemRead, bus.OpWriteThrough},
		events.WriteMissDirty:    {bus.OpWriteBack, bus.OpWriteThrough},
		events.WriteMissUncached: {bus.OpMemRead, bus.OpWriteThrough},
	}
	return NewSnoopyInval("WriteOnce", t, true, cfg)
}

// NewMESI returns the Illinois protocol: resident blocks are supplied
// cache-to-cache (dirty ones with a concurrent write-back), an Exclusive
// state makes writes to sole clean copies free, and writes to Shared
// copies cost one broadcast invalidation cycle.
func NewMESI(cfg Config) (*SnoopyInval, error) {
	t := map[events.Type][]bus.Op{
		events.ReadMissClean:    {bus.OpCacheRead},
		events.ReadMissDirty:    {bus.OpWriteBack},
		events.ReadMissUncached: {bus.OpMemRead},
		// M and E write hits are silent.
		events.WriteHitDirty:     nil,
		events.WriteHitCleanSole: nil,
		// S write hit: broadcast the invalidation on the bus.
		events.WriteHitCleanShared: {bus.OpBroadcastInvalidate},
		// Read-for-ownership: the fetch broadcast invalidates as it goes.
		events.WriteMissClean:    {bus.OpCacheRead},
		events.WriteMissDirty:    {bus.OpWriteBack},
		events.WriteMissUncached: {bus.OpMemRead},
	}
	return NewSnoopyInval("MESI", t, true, cfg)
}

// Name implements Engine.
func (e *SnoopyInval) Name() string { return e.name }

// Caches implements Engine.
func (e *SnoopyInval) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *SnoopyInval) Stats() *Stats { return &e.stats }

// ResetStats implements Engine: tallies are zeroed, protocol state kept.
func (e *SnoopyInval) ResetStats() { e.stats = Stats{} }

// event records the reference's Table 4 classification and emits its
// operations from the table.
func (e *SnoopyInval) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
	for _, op := range e.table[t] {
		e.emit(op)
	}
}

func (e *SnoopyInval) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	switch op {
	case bus.OpMemRead, bus.OpWriteBack, bus.OpWriteThrough:
		e.stats.MemAccesses++
	}
	e.txn = true
}

// Access implements Engine.
func (e *SnoopyInval) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, first)
	case trace.Write:
		e.write(c, block, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *SnoopyInval) read(c int, block uint64, first bool) {
	bs := e.state.get(block)
	if bs != nil && bs.sharers.Contains(c) {
		e.event(events.ReadHit)
		e.touch(c, block)
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fill(c, block)
		return
	}
	switch {
	case bs != nil && bs.dirty:
		e.event(events.ReadMissDirty)
		bs.dirty = false
		bs.owner = -1
	case bs != nil && !bs.sharers.Empty():
		e.event(events.ReadMissClean)
	default:
		e.event(events.ReadMissUncached)
	}
	e.fill(c, block)
}

func (e *SnoopyInval) write(c int, block uint64, first bool) {
	bs := e.state.get(block)
	if bs != nil && bs.sharers.Contains(c) {
		e.touch(c, block)
		if bs.dirty {
			e.event(events.WriteHitDirty)
		} else {
			others := bs.sharers.CountExcluding(c)
			e.stats.InvalFanout.Observe(others)
			if others == 0 {
				e.event(events.WriteHitCleanSole)
			} else {
				e.event(events.WriteHitCleanShared)
				e.stats.InvalEvents++
				e.stats.BroadcastInvals++
			}
		}
		e.invalidateOthers(bs, block, c)
		e.makeSole(bs, c)
		return
	}
	if first {
		e.event(events.WriteMissFirst)
		bs = e.state.ensure(block)
		e.makeSole(bs, c)
		e.insertReplacer(c, block)
		return
	}
	switch {
	case bs != nil && bs.dirty:
		e.event(events.WriteMissDirty)
	case bs != nil && !bs.sharers.Empty():
		e.event(events.WriteMissClean)
		e.stats.InvalFanout.Observe(bs.sharers.Count())
		e.stats.InvalEvents++
		e.stats.BroadcastInvals++
	default:
		e.event(events.WriteMissUncached)
	}
	if bs != nil {
		e.invalidateOthers(bs, block, c)
	}
	bs = e.state.ensure(block)
	e.makeSole(bs, c)
	e.insertReplacer(c, block)
}

// invalidateOthers drops every other copy; snooping makes the delivery
// free.
func (e *SnoopyInval) invalidateOthers(bs *blockState, block uint64, c int) {
	for h := bs.sharers.Next(0); h >= 0; h = bs.sharers.Next(h + 1) {
		if h != c && e.replacers != nil {
			e.replacers[h].Remove(block)
		}
	}
	keep := bs.sharers.Contains(c)
	bs.sharers.Clear()
	if keep {
		bs.sharers.Add(c)
	}
}

func (e *SnoopyInval) makeSole(bs *blockState, c int) {
	bs.sharers.Clear()
	bs.sharers.Add(c)
	bs.dirty = true
	bs.owner = c
}

func (e *SnoopyInval) touch(c int, block uint64) {
	if e.replacers != nil {
		e.replacers[c].Touch(block)
	}
}

func (e *SnoopyInval) fill(c int, block uint64) {
	bs := e.state.ensure(block)
	bs.sharers.Add(c)
	e.insertReplacer(c, block)
}

func (e *SnoopyInval) insertReplacer(c int, block uint64) {
	if e.replacers == nil {
		return
	}
	victim, evicted := e.replacers[c].Insert(block)
	if !evicted {
		return
	}
	e.stats.Evictions++
	vs := e.state.get(victim)
	if vs == nil {
		return
	}
	if vs.dirty && vs.owner == c {
		if e.writeBackOnEvict {
			e.emit(bus.OpWriteBack)
			e.stats.EvictionWriteBacks++
		}
		vs.dirty = false
		vs.owner = -1
	}
	vs.sharers.Remove(c)
	e.state.dropIfEmpty(victim, vs)
}

// CheckInvariants implements Engine.
func (e *SnoopyInval) CheckInvariants() error {
	for block, bs := range e.state {
		if bs.dirty && bs.sharers.Count() != 1 {
			return fmt.Errorf("%s: block %#x written-state with %d holders", e.name, block, bs.sharers.Count())
		}
		if bs.dirty {
			if sole, _ := bs.sharers.Sole(); sole != bs.owner {
				return fmt.Errorf("%s: block %#x owner %d not the holder", e.name, block, bs.owner)
			}
		}
	}
	return nil
}
