package coherence

import (
	"math/rand"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// --- MESI ---------------------------------------------------------------------

func TestMESIExclusiveStateSilentUpgrade(t *testing.T) {
	// The Illinois E state: a write hit on a sole clean copy needs no bus
	// traffic at all — the advantage over Dir0B's directory check and
	// WTI's write-through.
	e := must(NewMESI(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)  // first (E)
	f.write(0, 1) // E → M silently
	st := e.Stats()
	wantEvent(t, st, events.WriteHitCleanSole, 1)
	if st.Ops.Total() != 0 {
		t.Errorf("E-state upgrade emitted ops: %v", st.Ops)
	}
}

func TestMESISharedWriteBroadcastsOnce(t *testing.T) {
	e := must(NewMESI(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1) // S in both
	f.write(0, 1)
	st := e.Stats()
	wantEvent(t, st, events.WriteHitCleanShared, 1)
	wantOp(t, st, bus.OpBroadcastInvalidate, 1)
	f.read(1, 1) // invalidated: misses, supplied by owner's write-back
	wantEvent(t, st, events.ReadMissDirty, 1)
	wantOp(t, st, bus.OpWriteBack, 1)
}

func TestMESICacheToCacheSupply(t *testing.T) {
	e := must(NewMESI(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1) // supplied by cache 0, not memory (Illinois)
	st := e.Stats()
	wantOp(t, st, bus.OpCacheRead, 1)
	wantOp(t, st, bus.OpMemRead, 0)
}

func TestMESIEventFrequenciesMatchDir0B(t *testing.T) {
	mesi := must(NewMESI(cfg4()))
	d0b := must(NewDir0B(cfg4()))
	f := newFeeder(mesi, d0b)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20000; i++ {
		c := rng.Intn(4)
		b := uint64(rng.Intn(48))
		if rng.Intn(4) == 0 {
			f.write(c, b)
		} else {
			f.read(c, b)
		}
	}
	if mesi.Stats().Events != d0b.Stats().Events {
		t.Fatal("MESI and Dir0B share a state-change model; frequencies must match")
	}
}

// --- WriteOnce ----------------------------------------------------------------

func TestWriteOnceFirstWriteThroughThenLocal(t *testing.T) {
	e := must(NewWriteOnce(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.write(0, 1) // first write: through (Reserved)
	f.write(0, 1) // second write: local (Dirty)
	f.write(0, 1)
	st := e.Stats()
	wantOp(t, st, bus.OpWriteThrough, 1)
	wantEvent(t, st, events.WriteHitCleanSole, 1)
	wantEvent(t, st, events.WriteHitDirty, 2)
}

func TestWriteOnceDirtySupplyByWriteBack(t *testing.T) {
	e := must(NewWriteOnce(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.write(0, 1)
	f.write(0, 1) // dirty now
	f.read(1, 1)  // owner writes back; requester snarfs
	st := e.Stats()
	wantEvent(t, st, events.ReadMissDirty, 1)
	wantOp(t, st, bus.OpWriteBack, 1)
}

func TestWriteOnceCheaperThanWTIButSimilarShape(t *testing.T) {
	wo := must(NewWriteOnce(cfg4()))
	wti := must(NewWTI(cfg4()))
	f := newFeeder(wo, wti)
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 30000; i++ {
		c := rng.Intn(4)
		b := uint64(rng.Intn(32))
		if rng.Intn(3) == 0 {
			f.write(c, b)
		} else {
			f.read(c, b)
		}
	}
	m := bus.Pipelined()
	if wo.Stats().CyclesPerRef(m) >= wti.Stats().CyclesPerRef(m) {
		t.Errorf("WriteOnce %.4f not cheaper than WTI %.4f (repeated writes stay local)",
			wo.Stats().CyclesPerRef(m), wti.Stats().CyclesPerRef(m))
	}
	if wo.Stats().Events != wti.Stats().Events {
		t.Error("WriteOnce and WTI share the state-change model")
	}
}

// --- Firefly ------------------------------------------------------------------

func TestFireflySharedWritesKeepMemoryFresh(t *testing.T) {
	ff := must(NewFirefly(cfg4()))
	f := newFeeder(ff)
	f.read(0, 1)
	f.read(1, 1)
	f.write(0, 1) // update goes to caches AND memory
	st := ff.Stats()
	wantEvent(t, st, events.WriteHitUpdate, 1)
	wantOp(t, st, bus.OpWriteUpdate, 1)
	// A third cache's miss is served by (current) memory, not a cache.
	f.read(2, 1)
	wantEvent(t, st, events.ReadMissClean, 2)
	wantOp(t, st, bus.OpCacheRead, 0)
}

func TestFireflyPrivateWriteLeavesMemoryStale(t *testing.T) {
	ff := must(NewFirefly(cfg4()))
	f := newFeeder(ff)
	f.read(0, 1)
	f.write(0, 1) // sole copy: copy-back policy, memory stale
	f.read(1, 1)  // supplied by cache 0; memory snarfs
	st := ff.Stats()
	wantEvent(t, st, events.WriteHitLocal, 1)
	wantEvent(t, st, events.ReadMissDirty, 1)
	wantOp(t, st, bus.OpCacheRead, 1)
	// Memory is current again: another miss is served by memory.
	f.read(2, 1)
	wantEvent(t, st, events.ReadMissClean, 1)
	if err := ff.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFireflyVsDragonStaleReads(t *testing.T) {
	// Under Dragon shared data stays dirty in the caches forever; under
	// Firefly memory is refreshed by every shared write, so Dragon sees
	// at least as many cache-supplied (rm-blk-drty) misses.
	drg := must(NewDragon(cfg4()))
	ff := must(NewFirefly(cfg4()))
	f := newFeeder(drg, ff)
	rng := rand.New(rand.NewSource(59))
	for i := 0; i < 30000; i++ {
		c := rng.Intn(4)
		b := uint64(rng.Intn(32))
		if rng.Intn(4) == 0 {
			f.write(c, b)
		} else {
			f.read(c, b)
		}
	}
	if drg.Stats().Events[events.ReadMissDirty] < ff.Stats().Events[events.ReadMissDirty] {
		t.Errorf("Dragon rm-blk-drty %d < Firefly %d",
			drg.Stats().Events[events.ReadMissDirty], ff.Stats().Events[events.ReadMissDirty])
	}
	if err := ff.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- oracles for the extension protocols ---------------------------------------

func TestOracleMESI(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewMESI(Config{Caches: 5}) },
		func() oracle { return newMRSW() })
}

func TestOracleWriteOnce(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewWriteOnce(Config{Caches: 5}) },
		func() oracle { return newMRSW() })
}

// fireflyOracle: the update family with write-through shared updates.
type fireflyOracle struct {
	dragonOracle
}

func (o *fireflyOracle) predict(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if kind == trace.Instr {
		return events.Instr
	}
	hs := o.holders[block]
	holds := hs[c]
	var ev events.Type
	switch kind {
	case trace.Read:
		switch {
		case holds:
			return events.ReadHit
		case first:
			ev = events.ReadMissFirst
		case o.stale[block]:
			ev = events.ReadMissDirty
			o.stale[block] = false // memory snarfs the supplied block
		case len(hs) > 0:
			ev = events.ReadMissClean
		default:
			ev = events.ReadMissUncached
		}
		o.hold(block, c)
	default:
		wasStale := o.stale[block]
		switch {
		case holds && len(hs) > 1:
			ev = events.WriteHitUpdate
		case holds:
			ev = events.WriteHitLocal
		case first:
			ev = events.WriteMissFirst
		case wasStale:
			ev = events.WriteMissDirty
		case len(hs) > 0:
			ev = events.WriteMissClean
		default:
			ev = events.WriteMissUncached
		}
		o.hold(block, c)
		// A write shared with other holders goes through to memory;
		// a private write leaves memory stale.
		o.stale[block] = len(o.holders[block]) == 1
	}
	return ev
}

func TestOracleFirefly(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewFirefly(Config{Caches: 5}) },
		func() oracle {
			return &fireflyOracle{dragonOracle: *newDragonOracle()}
		})
}
