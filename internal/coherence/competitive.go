package coherence

import (
	"fmt"

	"dirsim/internal/bitset"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// Competitive is a competitive-update protocol: Dragon's update mechanism
// with a self-invalidation threshold. Each cached copy counts the updates
// it has absorbed since its processor last touched the block; at the
// threshold the copy drops out instead of being updated again.
//
// Pure update protocols never unshare: one stale sharer turns every later
// write into bus traffic forever (the pathology is easy to provoke in this
// simulator — migrate a process once under Dragon and its old cache is
// updated until the end of time). Competitive update bounds the damage at
// k wasted updates per departed sharer, interpolating between Dragon
// (k = ∞) and an invalidation protocol (k = 0's limit). The threshold
// trades update traffic against re-miss traffic, the classic competitive
// argument (pay at most a constant factor over the offline-optimal
// choice).
type Competitive struct {
	name      string
	threshold int
	cfg       Config

	stats     Stats
	state     map[uint64]*competitiveState
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

// competitiveState tracks holders, staleness of memory, and each holder's
// count of updates absorbed since its last local access.
type competitiveState struct {
	sharers  bitset.Set
	memStale bool
	unused   map[int]int // holder → updates since last local touch
}

var _ Engine = (*Competitive)(nil)

// NewCompetitive returns a competitive-update engine that self-invalidates
// a copy after threshold consecutive foreign updates. threshold must be at
// least 1.
func NewCompetitive(threshold int, cfg Config) (*Competitive, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("coherence: competitive threshold %d must be at least 1", threshold)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &Competitive{
		name:      fmt.Sprintf("Competitive%d", threshold),
		threshold: threshold,
		cfg:       cfg,
		state:     map[uint64]*competitiveState{},
		replacers: repl,
	}, nil
}

// Name implements Engine.
func (e *Competitive) Name() string { return e.name }

// Caches implements Engine.
func (e *Competitive) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *Competitive) Stats() *Stats { return &e.stats }

// ResetStats implements Engine.
func (e *Competitive) ResetStats() { e.stats = Stats{} }

// Threshold returns the self-invalidation threshold k.
func (e *Competitive) Threshold() int { return e.threshold }

func (e *Competitive) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
}

func (e *Competitive) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	if op == bus.OpMemRead || op == bus.OpWriteBack {
		e.stats.MemAccesses++
	}
	e.txn = true
}

func (e *Competitive) ensure(block uint64) *competitiveState {
	cs := e.state[block]
	if cs == nil {
		cs = &competitiveState{unused: map[int]int{}}
		e.state[block] = cs
	}
	return cs
}

// Access implements Engine.
func (e *Competitive) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, first)
	case trace.Write:
		e.write(c, block, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *Competitive) read(c int, block uint64, first bool) {
	cs := e.state[block]
	if cs != nil && cs.sharers.Contains(c) {
		e.event(events.ReadHit)
		cs.unused[c] = 0
		e.touch(c, block)
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fill(c, block)
		return
	}
	switch {
	case cs != nil && cs.memStale:
		e.event(events.ReadMissDirty)
		e.emit(bus.OpCacheRead)
	case cs != nil && !cs.sharers.Empty():
		e.event(events.ReadMissClean)
		e.emit(bus.OpMemRead)
	default:
		e.event(events.ReadMissUncached)
		e.emit(bus.OpMemRead)
	}
	e.fill(c, block)
}

func (e *Competitive) write(c int, block uint64, first bool) {
	cs := e.state[block]
	if cs != nil && cs.sharers.Contains(c) {
		e.touch(c, block)
		cs.unused[c] = 0
		if cs.sharers.ContainsOther(c) {
			e.event(events.WriteHitUpdate)
			e.emit(bus.OpWriteUpdate)
			e.chargeUpdate(cs, block, c)
		} else {
			e.event(events.WriteHitLocal)
		}
		cs.memStale = true
		return
	}
	if first {
		e.event(events.WriteMissFirst)
		e.fill(c, block)
		e.ensure(block).memStale = true
		return
	}
	switch {
	case cs != nil && cs.memStale:
		e.event(events.WriteMissDirty)
		e.emit(bus.OpCacheRead)
	case cs != nil && !cs.sharers.Empty():
		e.event(events.WriteMissClean)
		e.emit(bus.OpMemRead)
	default:
		e.event(events.WriteMissUncached)
		e.emit(bus.OpMemRead)
	}
	hadSharers := cs != nil && !cs.sharers.Empty()
	e.fill(c, block)
	cs = e.ensure(block)
	cs.unused[c] = 0
	if hadSharers {
		e.emit(bus.OpWriteUpdate)
		e.chargeUpdate(cs, block, c)
	}
	cs.memStale = true
}

// chargeUpdate increments every other holder's unused counter and drops
// copies that reach the threshold. If the last remaining copy with a stale
// memory would be the writer's, memory stays stale (the writer holds it).
func (e *Competitive) chargeUpdate(cs *competitiveState, block uint64, writer int) {
	// Dropping h mid-loop is safe: Next only looks forward from h+1.
	for h := cs.sharers.Next(0); h >= 0; h = cs.sharers.Next(h + 1) {
		if h == writer {
			continue
		}
		cs.unused[h]++
		if cs.unused[h] < e.threshold {
			continue
		}
		cs.sharers.Remove(h)
		delete(cs.unused, h)
		e.stats.PointerEvictions++ // reuse the "copies dropped by policy" counter
		if e.replacers != nil {
			e.replacers[h].Remove(block)
		}
	}
}

func (e *Competitive) fill(c int, block uint64) {
	cs := e.ensure(block)
	cs.sharers.Add(c)
	cs.unused[c] = 0
	if e.replacers == nil {
		return
	}
	victim, evicted := e.replacers[c].Insert(block)
	if !evicted {
		return
	}
	e.stats.Evictions++
	vs := e.state[victim]
	if vs == nil {
		return
	}
	vs.sharers.Remove(c)
	delete(vs.unused, c)
	if vs.sharers.Empty() {
		if vs.memStale {
			e.emit(bus.OpWriteBack)
			e.stats.EvictionWriteBacks++
			vs.memStale = false
		}
		delete(e.state, victim)
	}
}

func (e *Competitive) touch(c int, block uint64) {
	if e.replacers != nil {
		e.replacers[c].Touch(block)
	}
}

// CheckInvariants implements Engine.
func (e *Competitive) CheckInvariants() error {
	for block, cs := range e.state {
		if cs.memStale && cs.sharers.Empty() {
			return fmt.Errorf("%s: block %#x stale with no cached copy", e.name, block)
		}
		for h, n := range cs.unused {
			if !cs.sharers.Contains(h) {
				return fmt.Errorf("%s: block %#x counter for non-holder %d", e.name, block, h)
			}
			if n >= e.threshold {
				return fmt.Errorf("%s: block %#x holder %d kept past threshold (%d)", e.name, block, h, n)
			}
		}
	}
	return nil
}
