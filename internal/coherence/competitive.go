package coherence

import (
	"fmt"

	"dirsim/internal/bitset"
	"dirsim/internal/blockid"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// Competitive is a competitive-update protocol: Dragon's update mechanism
// with a self-invalidation threshold. Each cached copy counts the updates
// it has absorbed since its processor last touched the block; at the
// threshold the copy drops out instead of being updated again.
//
// Pure update protocols never unshare: one stale sharer turns every later
// write into bus traffic forever (the pathology is easy to provoke in this
// simulator — migrate a process once under Dragon and its old cache is
// updated until the end of time). Competitive update bounds the damage at
// k wasted updates per departed sharer, interpolating between Dragon
// (k = ∞) and an invalidation protocol (k = 0's limit). The threshold
// trades update traffic against re-miss traffic, the classic competitive
// argument (pay at most a constant factor over the offline-optimal
// choice).
type Competitive struct {
	name      string
	threshold int
	cfg       Config

	stats     Stats
	tab       *blockid.Table
	st        competitiveStates
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

// competitiveStates tracks, in parallel arrays indexed by block id:
// holders, staleness of memory, and each holder's count of updates
// absorbed since its last local access. The counters are a flattened
// [id × caches] matrix; a non-holder's counter is always zero (the map
// representation this replaced deleted the entry instead), and a fully
// evicted block has memStale == false, so empty slots are
// indistinguishable from absent map entries.
type competitiveStates struct {
	sharers  []bitset.Set
	memStale []bool
	unused   []int32 // holder's updates since last local touch, [id*caches+c]
}

func (t *competitiveStates) ensure(id blockid.ID, caches int) {
	if int(id) < len(t.sharers) {
		return
	}
	n := int(id) + 1 + len(t.sharers)
	sharers := make([]bitset.Set, n)
	copy(sharers, t.sharers)
	memStale := make([]bool, n)
	copy(memStale, t.memStale)
	unused := make([]int32, n*caches)
	copy(unused, t.unused)
	t.sharers, t.memStale, t.unused = sharers, memStale, unused
}

var (
	_ Engine        = (*Competitive)(nil)
	_ IndexedEngine = (*Competitive)(nil)
)

// NewCompetitive returns a competitive-update engine that self-invalidates
// a copy after threshold consecutive foreign updates. threshold must be at
// least 1.
func NewCompetitive(threshold int, cfg Config) (*Competitive, error) {
	if threshold < 1 {
		return nil, fmt.Errorf("coherence: competitive threshold %d must be at least 1", threshold)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &Competitive{
		name:      fmt.Sprintf("Competitive%d", threshold),
		threshold: threshold,
		cfg:       cfg,
		tab:       blockid.New(),
		replacers: repl,
	}, nil
}

// Name implements Engine.
func (e *Competitive) Name() string { return e.name }

// Caches implements Engine.
func (e *Competitive) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *Competitive) Stats() *Stats { return &e.stats }

// ResetStats implements Engine.
func (e *Competitive) ResetStats() { e.stats = Stats{} }

// AccessInstrs implements IndexedEngine: n coalesced instruction fetches.
func (e *Competitive) AccessInstrs(n uint64) {
	e.stats.Refs += n
	e.stats.Events.Add(events.Instr, n)
}

// Threshold returns the self-invalidation threshold k.
func (e *Competitive) Threshold() int { return e.threshold }

func (e *Competitive) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
}

func (e *Competitive) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	if op == bus.OpMemRead || op == bus.OpWriteBack {
		e.stats.MemAccesses++
	}
	e.txn = true
}

// BindBlocks implements IndexedEngine.
func (e *Competitive) BindBlocks(t *blockid.Table) bool {
	if e.tab.Len() > 0 {
		return false
	}
	e.tab = t
	return true
}

// Access implements Engine: intern the block and delegate to AccessID.
func (e *Competitive) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	var id blockid.ID
	if kind != trace.Instr {
		id, _ = e.tab.Intern(block)
	}
	return e.AccessID(c, kind, block, id, first)
}

// AccessID implements IndexedEngine.
func (e *Competitive) AccessID(c int, kind trace.Kind, block uint64, id blockid.ID, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, id, first)
	case trace.Write:
		e.write(c, block, id, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *Competitive) read(c int, block uint64, id blockid.ID, first bool) {
	e.st.ensure(id, e.cfg.Caches)
	if e.st.sharers[id].Contains(c) {
		e.event(events.ReadHit)
		e.st.unused[int(id)*e.cfg.Caches+c] = 0
		e.touch(c, id)
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fill(c, block, id)
		return
	}
	switch {
	case e.st.memStale[id]:
		e.event(events.ReadMissDirty)
		e.emit(bus.OpCacheRead)
	case !e.st.sharers[id].Empty():
		e.event(events.ReadMissClean)
		e.emit(bus.OpMemRead)
	default:
		e.event(events.ReadMissUncached)
		e.emit(bus.OpMemRead)
	}
	e.fill(c, block, id)
}

func (e *Competitive) write(c int, block uint64, id blockid.ID, first bool) {
	e.st.ensure(id, e.cfg.Caches)
	if e.st.sharers[id].Contains(c) {
		e.touch(c, id)
		e.st.unused[int(id)*e.cfg.Caches+c] = 0
		if e.st.sharers[id].ContainsOther(c) {
			e.event(events.WriteHitUpdate)
			e.emit(bus.OpWriteUpdate)
			e.chargeUpdate(id, c)
		} else {
			e.event(events.WriteHitLocal)
		}
		e.st.memStale[id] = true
		return
	}
	if first {
		e.event(events.WriteMissFirst)
		e.fill(c, block, id)
		e.st.memStale[id] = true
		return
	}
	switch {
	case e.st.memStale[id]:
		e.event(events.WriteMissDirty)
		e.emit(bus.OpCacheRead)
	case !e.st.sharers[id].Empty():
		e.event(events.WriteMissClean)
		e.emit(bus.OpMemRead)
	default:
		e.event(events.WriteMissUncached)
		e.emit(bus.OpMemRead)
	}
	hadSharers := !e.st.sharers[id].Empty()
	e.fill(c, block, id)
	e.st.unused[int(id)*e.cfg.Caches+c] = 0
	if hadSharers {
		e.emit(bus.OpWriteUpdate)
		e.chargeUpdate(id, c)
	}
	e.st.memStale[id] = true
}

// chargeUpdate increments every other holder's unused counter and drops
// copies that reach the threshold. If the last remaining copy with a stale
// memory would be the writer's, memory stays stale (the writer holds it).
func (e *Competitive) chargeUpdate(id blockid.ID, writer int) {
	base := int(id) * e.cfg.Caches
	// Dropping h mid-loop is safe: Next only looks forward from h+1.
	for h := e.st.sharers[id].Next(0); h >= 0; h = e.st.sharers[id].Next(h + 1) {
		if h == writer {
			continue
		}
		e.st.unused[base+h]++
		if int(e.st.unused[base+h]) < e.threshold {
			continue
		}
		e.st.sharers[id].Remove(h)
		e.st.unused[base+h] = 0
		e.stats.PointerEvictions++ // reuse the "copies dropped by policy" counter
		if e.replacers != nil {
			e.replacers[h].Remove(id)
		}
	}
}

func (e *Competitive) fill(c int, block uint64, id blockid.ID) {
	e.st.sharers[id].Add(c)
	e.st.unused[int(id)*e.cfg.Caches+c] = 0
	if e.replacers == nil {
		return
	}
	victim, evicted := e.replacers[c].Insert(block, id)
	if !evicted {
		return
	}
	e.stats.Evictions++
	e.st.ensure(victim, e.cfg.Caches)
	e.st.sharers[victim].Remove(c)
	e.st.unused[int(victim)*e.cfg.Caches+c] = 0
	if e.st.sharers[victim].Empty() && e.st.memStale[victim] {
		e.emit(bus.OpWriteBack)
		e.stats.EvictionWriteBacks++
		e.st.memStale[victim] = false
	}
}

func (e *Competitive) touch(c int, id blockid.ID) {
	if e.replacers != nil {
		e.replacers[c].Touch(id)
	}
}

// CheckInvariants implements Engine.
func (e *Competitive) CheckInvariants() error {
	// A dropped or evicted copy's counter is zeroed where the map
	// representation deleted it, so a non-zero counter for a non-holder is
	// genuine corruption, and unused slots (all zero) trip nothing.
	for i := range e.st.sharers {
		id := blockid.ID(i)
		if e.st.memStale[i] && e.st.sharers[i].Empty() {
			return fmt.Errorf("%s: block %#x stale with no cached copy", e.name, e.tab.Block(id))
		}
		base := i * e.cfg.Caches
		for c := 0; c < e.cfg.Caches; c++ {
			n := int(e.st.unused[base+c])
			if n != 0 && !e.st.sharers[i].Contains(c) {
				return fmt.Errorf("%s: block %#x counter for non-holder %d", e.name, e.tab.Block(id), c)
			}
			if n >= e.threshold {
				return fmt.Errorf("%s: block %#x holder %d kept past threshold (%d)", e.name, e.tab.Block(id), c, n)
			}
		}
	}
	return nil
}
