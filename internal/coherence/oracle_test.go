package coherence

// An independent reference model ("oracle") for each state-change model,
// written with naive maps and no shared code with the engines. Engines now
// return each reference's classification; the oracle predicts it, and any
// divergence on random streams is a bug in one of the two — this is the
// strongest end-to-end check in the package because the oracle knows
// nothing about directories, stores, or bus operations.

import (
	"testing"
	"testing/quick"

	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// oracle predicts the classification of the next reference.
type oracle interface {
	predict(c int, kind trace.Kind, block uint64, first bool) events.Type
}

// mrswOracle models the multiple-readers/single-writer family (Dir0B,
// DirnNB, Dir_iB, coded set, Tang, WTI, Berkeley).
type mrswOracle struct {
	holders map[uint64]map[int]bool
	dirty   map[uint64]int // block → owner, present iff dirty
}

func newMRSW() *mrswOracle {
	return &mrswOracle{holders: map[uint64]map[int]bool{}, dirty: map[uint64]int{}}
}

func (o *mrswOracle) hold(block uint64, c int) {
	if o.holders[block] == nil {
		o.holders[block] = map[int]bool{}
	}
	o.holders[block][c] = true
}

func (o *mrswOracle) predict(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if kind == trace.Instr {
		return events.Instr
	}
	hs := o.holders[block]
	owner, isDirty := o.dirty[block]
	holds := hs[c]
	switch kind {
	case trace.Read:
		if holds {
			return events.ReadHit
		}
		if first {
			o.hold(block, c)
			return events.ReadMissFirst
		}
		var ev events.Type
		switch {
		case isDirty:
			ev = events.ReadMissDirty
			delete(o.dirty, block) // flushed; owner keeps a clean copy
		case len(hs) > 0:
			ev = events.ReadMissClean
		default:
			ev = events.ReadMissUncached
		}
		o.hold(block, c)
		return ev
	default: // write
		var ev events.Type
		switch {
		case holds && isDirty && owner == c:
			ev = events.WriteHitDirty
		case holds && len(hs) == 1:
			ev = events.WriteHitCleanSole
		case holds:
			ev = events.WriteHitCleanShared
		case first:
			ev = events.WriteMissFirst
		case isDirty:
			ev = events.WriteMissDirty
		case len(hs) > 0:
			ev = events.WriteMissClean
		default:
			ev = events.WriteMissUncached
		}
		o.holders[block] = map[int]bool{c: true}
		o.dirty[block] = c
		return ev
	}
}

// exclusiveOracle models Dir1NB: one copy, period.
type exclusiveOracle struct {
	holder map[uint64]int
	dirty  map[uint64]bool
}

func newExclusive() *exclusiveOracle {
	return &exclusiveOracle{holder: map[uint64]int{}, dirty: map[uint64]bool{}}
}

func (o *exclusiveOracle) predict(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if kind == trace.Instr {
		return events.Instr
	}
	h, held := o.holder[block]
	mine := held && h == c
	var ev events.Type
	switch kind {
	case trace.Read:
		switch {
		case mine:
			return events.ReadHit
		case first:
			ev = events.ReadMissFirst
		case held && o.dirty[block]:
			ev = events.ReadMissDirty
		case held:
			ev = events.ReadMissClean
		default:
			ev = events.ReadMissUncached
		}
		o.holder[block] = c
		o.dirty[block] = false
	default:
		switch {
		case mine && o.dirty[block]:
			return events.WriteHitDirty
		case mine:
			// Sole by construction.
			o.dirty[block] = true
			return events.WriteHitCleanSole
		case first:
			ev = events.WriteMissFirst
		case held && o.dirty[block]:
			ev = events.WriteMissDirty
		case held:
			ev = events.WriteMissClean
		default:
			ev = events.WriteMissUncached
		}
		o.holder[block] = c
		o.dirty[block] = true
	}
	return ev
}

// dragonOracle models the update family: copies never disappear.
type dragonOracle struct {
	holders map[uint64]map[int]bool
	stale   map[uint64]bool // memory stale
}

func newDragonOracle() *dragonOracle {
	return &dragonOracle{holders: map[uint64]map[int]bool{}, stale: map[uint64]bool{}}
}

func (o *dragonOracle) hold(block uint64, c int) {
	if o.holders[block] == nil {
		o.holders[block] = map[int]bool{}
	}
	o.holders[block][c] = true
}

func (o *dragonOracle) predict(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if kind == trace.Instr {
		return events.Instr
	}
	hs := o.holders[block]
	holds := hs[c]
	var ev events.Type
	switch kind {
	case trace.Read:
		switch {
		case holds:
			return events.ReadHit
		case first:
			ev = events.ReadMissFirst
		case o.stale[block]:
			ev = events.ReadMissDirty
		case len(hs) > 0:
			ev = events.ReadMissClean
		default:
			ev = events.ReadMissUncached
		}
		o.hold(block, c)
	default:
		switch {
		case holds && len(hs) > 1:
			ev = events.WriteHitUpdate
		case holds:
			ev = events.WriteHitLocal
		case first:
			ev = events.WriteMissFirst
		case o.stale[block]:
			ev = events.WriteMissDirty
		case len(hs) > 0:
			ev = events.WriteMissClean
		default:
			ev = events.WriteMissUncached
		}
		o.hold(block, c)
		o.stale[block] = true
	}
	return ev
}

// checkAgainstOracle replays a random stream through the engine and its
// oracle, failing on the first divergence.
func checkAgainstOracle(t *testing.T, mk func() (Engine, error), mkOracle func() oracle) {
	t.Helper()
	f := func(raw []uint32) bool {
		e, err := mk()
		if err != nil {
			return false
		}
		o := mkOracle()
		seen := map[uint64]bool{}
		for _, w := range raw {
			c := int(w) % e.Caches()
			b := uint64(w>>8) % 24
			var kind trace.Kind
			switch (w >> 4) % 5 {
			case 0:
				kind = trace.Write
			case 1:
				kind = trace.Instr
			default:
				kind = trace.Read
			}
			first := false
			if kind != trace.Instr && !seen[b] {
				seen[b] = true
				first = true
			}
			want := o.predict(c, kind, b, first)
			got := e.Access(c, kind, b, first)
			if got != want {
				t.Logf("%s: cache %d %v block %d first=%v: engine %v, oracle %v",
					e.Name(), c, kind, b, first, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleDir0B(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewDir0B(Config{Caches: 5}) },
		func() oracle { return newMRSW() })
}

func TestOracleDirnNB(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewDirnNB(Config{Caches: 5}) },
		func() oracle { return newMRSW() })
}

func TestOracleDiriB(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewDiriB(2, Config{Caches: 5}) },
		func() oracle { return newMRSW() })
}

func TestOracleCodedSet(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewCodedSet(Config{Caches: 5}) },
		func() oracle { return newMRSW() })
}

func TestOracleTang(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewTang(Config{Caches: 5}) },
		func() oracle { return newMRSW() })
}

func TestOracleWTI(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewWTI(Config{Caches: 5}) },
		func() oracle { return newMRSW() })
}

func TestOracleBerkeley(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewBerkeley(Config{Caches: 5}) },
		func() oracle { return newMRSW() })
}

func TestOracleDir1NB(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewDir1NB(Config{Caches: 5}) },
		func() oracle { return newExclusive() })
}

func TestOracleDragon(t *testing.T) {
	checkAgainstOracle(t,
		func() (Engine, error) { return NewDragon(Config{Caches: 5}) },
		func() oracle { return newDragonOracle() })
}
