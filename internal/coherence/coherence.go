// Package coherence implements the cache-consistency protocol engines the
// paper evaluates: the directory family Dir_i{B,NB} of Section 2's
// classification (Dir1NB, Dir_iNB, Dir_nNB, Dir0B, Dir_iB, and the Section
// 6 coded-set variant), and the snoopy protocols used for comparison —
// Write-Through-With-Invalidate and Dragon — plus the Berkeley Ownership
// cost model derived in Section 5.
//
// An engine consumes one classified memory reference at a time and
// maintains two things:
//
//   - the ground-truth sharing state of every block (which caches hold a
//     copy, and whether memory is stale), which determines the Table 4
//     event classification; and
//   - the protocol's bus-operation stream (fetches, write-backs,
//     invalidations, directory checks), which the cost models in
//     internal/bus price into bus cycles per reference.
//
// Keeping both lets the simulator reproduce the paper's methodology
// (event frequencies × per-event costs) and cross-check it against direct
// message-level accounting — the two must agree exactly.
package coherence

import (
	"fmt"
	"strings"

	"dirsim/internal/bitset"
	"dirsim/internal/blockid"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// Engine is a cache-consistency protocol simulated over a reference stream.
//
// Access processes one data or instruction reference issued by cacheID for
// the given block. first marks the first reference to the block anywhere in
// the trace; per Section 4 such cold misses are recorded as *-first-ref
// events and priced at zero, since they occur in a uniprocessor infinite
// cache as well.
type Engine interface {
	// Name returns the paper's name for the scheme ("Dir1NB", "WTI", …).
	Name() string
	// Caches returns the number of caches simulated.
	Caches() int
	// Access processes one reference and returns its Table 4
	// classification under this protocol's state-change model.
	Access(cacheID int, kind trace.Kind, block uint64, first bool) events.Type
	// Stats exposes the tallies accumulated so far.
	Stats() *Stats
	// ResetStats zeroes the tallies while keeping all protocol state —
	// used to discard a warm-up prefix of the trace.
	ResetStats()
	// CheckInvariants verifies internal consistency (protocol state vs
	// directory contents); it is meant for tests and returns the first
	// violation found.
	CheckInvariants() error
}

// IndexedEngine is implemented by engines whose per-block state is indexed
// by dense block ids (internal/blockid) rather than hashed by raw block
// address. A driver that interns each decoded reference once can hand every
// engine the id directly, collapsing the per-engine hash probe Access pays
// into a slice index. Every engine NewByName constructs implements it.
type IndexedEngine interface {
	Engine
	// BindBlocks makes the engine resolve ids against t — the caller's
	// interning table — instead of its private one. Binding is only legal
	// while the engine's own table is still empty (ids it already handed
	// out would be reinterpreted); BindBlocks reports whether the bind
	// took effect. When it returns false the caller must keep using
	// Access, which interns internally.
	BindBlocks(t *blockid.Table) bool
	// AccessID is Access for a pre-interned reference: id must be the
	// bound table's id for block. It is ignored for instruction
	// references, which touch no per-block state.
	AccessID(cacheID int, kind trace.Kind, block uint64, id blockid.ID, first bool) events.Type
	// AccessInstrs accounts n consecutive-or-interleaved instruction
	// fetches in one call. Instruction references change no protocol
	// state and contribute only commutative sums (Refs, the Instr event
	// tally), so a driver may defer and coalesce them anywhere within a
	// measurement window; the resulting Stats are identical to n
	// AccessID(…, trace.Instr, …) calls.
	AccessInstrs(n uint64)
}

// Inspector exposes an engine's protocol state to the model checker in
// internal/mc. Every engine NewByName constructs implements it.
//
// The contract mc relies on: two engines of the same scheme and
// configuration that report equal StateKeys behave identically on every
// future reference — the key is a complete, canonical encoding of the
// protocol state (ground-truth sharing state plus whatever the directory
// organisation remembers) restricted to the given blocks. Keys cover the
// paper's infinite-cache configuration; finite-cache replacement recency
// and sparse-directory entry recency are not encoded.
type Inspector interface {
	// StateKey returns the canonical encoding of the engine's state for
	// the given blocks, in the given block order. It is deterministic:
	// replaying the same reference sequence always yields the same key.
	StateKey(blocks []uint64) string
	// Truth reports the ground-truth sharing state of one block: the
	// caches holding a copy (ascending) and whether the block is in the
	// protocol's written state (memory considered stale under copy-back
	// semantics; the virtual written state for write-through schemes).
	Truth(block uint64) (holders []int, dirty bool)
}

// ModelAdjuster is implemented by engines whose published cost model
// differs from the generic operation pricing. The Berkeley Ownership
// estimate of Section 5 prices directory checks at zero because snooping
// caches already know whether an invalidation is needed.
type ModelAdjuster interface {
	AdjustModel(m bus.CostModel) bus.CostModel
}

// Stats accumulates everything the paper measures for one scheme.
type Stats struct {
	// Refs is the number of references processed (including
	// instructions).
	Refs uint64
	// Events tallies the Table 4 reference events.
	Events events.Counts
	// Ops tallies emitted bus operations.
	Ops bus.OpCounts
	// Transactions counts references that put at least one operation on
	// the bus; Figure 5 reports Ops cycles per transaction, and Section
	// 5.1's fixed overhead q is charged per transaction.
	Transactions uint64

	// InvalFanout is Figure 1: for every write to a previously-clean
	// block, the number of *other* caches holding a copy that must be
	// invalidated.
	InvalFanout trace.Histogram

	// InvalEvents counts references that required invalidating copies in
	// other caches. DirectedInvals and BroadcastInvals split the
	// delivery mechanism; WastedInvals counts directed messages sent to
	// caches that held no copy (coded-set supersets).
	InvalEvents     uint64
	DirectedInvals  uint64
	BroadcastInvals uint64
	WastedInvals    uint64

	// PointerEvictions counts copies invalidated by Dir_iNB stores to
	// free a pointer (the "slightly increased miss rate" trade of
	// Section 6).
	PointerEvictions uint64

	// DirAccesses counts all directory accesses, overlapped or not, for
	// the directory-vs-memory bandwidth comparison of Section 5.
	DirAccesses uint64
	// MemAccesses counts block transfers involving main memory.
	MemAccesses uint64

	// Evictions and EvictionWriteBacks count finite-cache replacements
	// (zero in the paper's infinite-cache mode).
	Evictions          uint64
	EvictionWriteBacks uint64

	// DirEntryEvictions counts sparse-directory entry replacements, each
	// of which invalidated every cached copy of the displaced block.
	DirEntryEvictions uint64

	// Snarfs counts copies refilled for free off a broadcast bus read
	// (the Rudolph–Segall read-broadcast optimisation).
	Snarfs uint64

	// PerCache breaks data references down by issuing cache, exposing
	// load imbalance (lock holders, producers and consumers see very
	// different miss streams).
	PerCache []CacheTally
}

// CacheTally summarises one cache's data references.
type CacheTally struct {
	Hits   uint64
	Misses uint64
	Writes uint64
}

// recordPerCache attributes a classified data reference to cache c in a
// machine of n caches. The slice is allocated on first use so zeroed Stats
// stay cheap.
func (s *Stats) recordPerCache(c, n int, t events.Type) {
	if s.PerCache == nil {
		s.growPerCache(n)
	}
	ct := &s.PerCache[c]
	b := t.Tally()
	ct.Hits += uint64(b & events.TallyHit)
	ct.Misses += uint64(b & events.TallyMiss >> 1)
	ct.Writes += uint64(b & events.TallyWrite >> 2)
}

// growPerCache allocates the per-cache tallies on first use, outlined so
// recordPerCache stays within the inlining budget on engine hot paths.
// The nil guard repeats here so the allocation keeps the guarded,
// amortized shape the enginepurity rule admits.
func (s *Stats) growPerCache(n int) {
	if s.PerCache == nil {
		s.PerCache = make([]CacheTally, n)
	}
}

// MissImbalance returns the ratio of the busiest cache's misses to the
// mean across caches (1 = perfectly balanced, 0 if nothing recorded).
func (s *Stats) MissImbalance() float64 {
	if len(s.PerCache) == 0 {
		return 0
	}
	var total, max uint64
	for _, ct := range s.PerCache {
		total += ct.Misses
		if ct.Misses > max {
			max = ct.Misses
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(s.PerCache))
	return float64(max) / mean
}

// CyclesPerRef prices the accumulated operations under m, per reference.
func (s *Stats) CyclesPerRef(m bus.CostModel) float64 {
	if s.Refs == 0 {
		return 0
	}
	return m.Cycles(s.Ops) / float64(s.Refs)
}

// CyclesPerRefWithOverhead adds Section 5.1's fixed per-transaction
// overhead of q bus cycles: cycles(q) = cycles + q·transactions.
func (s *Stats) CyclesPerRefWithOverhead(m bus.CostModel, q float64) float64 {
	if s.Refs == 0 {
		return 0
	}
	return (m.Cycles(s.Ops) + q*float64(s.Transactions)) / float64(s.Refs)
}

// CyclesPerTransaction is Figure 5's metric.
func (s *Stats) CyclesPerTransaction(m bus.CostModel) float64 {
	if s.Transactions == 0 {
		return 0
	}
	return m.Cycles(s.Ops) / float64(s.Transactions)
}

// Config carries the machine parameters common to all engines.
type Config struct {
	// Caches is the number of processor caches (the paper's traces have
	// four).
	Caches int
	// FiniteSets and FiniteWays, when both positive, give every cache a
	// finite set-associative geometry; otherwise caches are infinite,
	// the paper's default.
	FiniteSets, FiniteWays int
	// DirEntries, when positive, bounds the directory to that many
	// simultaneously tracked blocks (a sparse directory). Tracking a new
	// block may evict another entry, which forces every cached copy of
	// the evicted block to be invalidated (and written back if dirty) so
	// the directory never loses information it still needs. Zero keeps
	// the paper's memory-resident directory (one entry per memory
	// block). Only directory engines honour it; snoopy engines have no
	// directory.
	DirEntries int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Caches < 1 || c.Caches > 1<<20 {
		return fmt.Errorf("coherence: cache count %d out of range", c.Caches)
	}
	if (c.FiniteSets > 0) != (c.FiniteWays > 0) {
		return fmt.Errorf("coherence: FiniteSets and FiniteWays must be set together")
	}
	if c.FiniteSets > 0 && !trace.IsPow2(c.FiniteSets) {
		return fmt.Errorf("coherence: FiniteSets = %d must be a power of two", c.FiniteSets)
	}
	if c.DirEntries < 0 {
		return fmt.Errorf("coherence: negative DirEntries %d", c.DirEntries)
	}
	return nil
}

// Finite reports whether the configuration uses finite caches.
func (c Config) Finite() bool { return c.FiniteSets > 0 && c.FiniteWays > 0 }

// newReplacers builds per-cache replacement trackers, or nil in infinite
// mode (membership is already tracked by the ground-truth sharer sets).
func (c Config) newReplacers() ([]cache.Replacer, error) {
	if !c.Finite() {
		return nil, nil
	}
	out := make([]cache.Replacer, c.Caches)
	for i := range out {
		r, err := cache.NewSetAssoc(c.FiniteSets, c.FiniteWays)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// blockStates is the ground truth for every block under an invalidation
// protocol, held as struct-of-arrays indexed by dense block id: the set of
// caches holding a copy of each block, whether one of them holds it dirty
// (memory stale), and which one when so. Slots are never deleted — a block
// with no holders is an empty sharer set, which encodes and behaves
// identically to the absent entry of the map-keyed representation this
// replaced (stale dirty/owner values are unobservable: both are only
// consulted while the block has holders, and every transition into the
// dirty state rewrites them).
type blockStates struct {
	sharers []bitset.Set
	dirty   []bool
	owner   []int32 // valid when dirty
}

// ensure grows the arrays to cover id. Growth at least doubles, so the
// per-reference cost amortizes to O(1) and the steady state allocates
// nothing.
func (t *blockStates) ensure(id blockid.ID) {
	if int(id) < len(t.sharers) {
		return
	}
	n := int(id) + 1 + len(t.sharers)
	sharers := make([]bitset.Set, n)
	copy(sharers, t.sharers)
	dirty := make([]bool, n)
	copy(dirty, t.dirty)
	owner := make([]int32, n)
	copy(owner, t.owner)
	for i := len(t.owner); i < n; i++ {
		owner[i] = -1
	}
	t.sharers, t.dirty, t.owner = sharers, dirty, owner
}

// appendKey writes the canonical encoding of one block's ground truth: the
// holder set, and the owner when the block is in the written state. ok is
// the caller's table-lookup result; a block that was never interned, or has
// no holders, encodes as "-".
func (t *blockStates) appendKey(b *strings.Builder, id blockid.ID, ok bool) {
	if !ok || int(id) >= len(t.sharers) || t.sharers[id].Empty() {
		b.WriteString("-")
		return
	}
	b.WriteString(t.sharers[id].String())
	if t.dirty[id] {
		fmt.Fprintf(b, "!%d", t.owner[id])
	}
}

// truth reports the block's holders (ascending) and written state. ok is
// the caller's table-lookup result.
func (t *blockStates) truth(id blockid.ID, ok bool) ([]int, bool) {
	if !ok || int(id) >= len(t.sharers) || t.sharers[id].Empty() {
		return nil, false
	}
	return t.sharers[id].Elems(), t.dirty[id]
}
