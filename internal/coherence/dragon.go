package coherence

import (
	"fmt"

	"dirsim/internal/bitset"
	"dirsim/internal/blockid"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// Dragon is the Xerox Dragon snoopy update protocol, the paper's
// high-performance comparison point. Instead of invalidating stale copies,
// a write to a shared block broadcasts the new word and every holder
// updates in place; a special "shared" bus line tells the writer whether
// any other cache holds the block. In an infinite cache a block, once
// loaded, stays forever, so Dragon's miss rates are the native miss rates
// of the trace and its dominant cost is the write updates (Table 4's
// wh-distrib row).
type Dragon struct {
	name string
	cfg  Config
	// updatesMemory marks the Firefly variant: a write update also
	// refreshes main memory (write-through for shared data), so memory
	// is only ever stale for blocks written while privately held.
	updatesMemory bool

	stats     Stats
	tab       *blockid.Table
	st        dragonStates
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

// dragonStates is the ground truth under an update protocol, held as
// parallel arrays indexed by block id: who holds copies and whether main
// memory has the latest value. An empty sharer set is the "never cached /
// evicted everywhere" state, and every path that drops the last copy
// flushes and clears memStale, so empty slots are indistinguishable from
// absent entries of the map representation this replaced.
type dragonStates struct {
	sharers  []bitset.Set
	memStale []bool
}

func (t *dragonStates) ensure(id blockid.ID) {
	if int(id) < len(t.sharers) {
		return
	}
	n := int(id) + 1 + len(t.sharers)
	sharers := make([]bitset.Set, n)
	copy(sharers, t.sharers)
	memStale := make([]bool, n)
	copy(memStale, t.memStale)
	t.sharers, t.memStale = sharers, memStale
}

var (
	_ Engine        = (*Dragon)(nil)
	_ IndexedEngine = (*Dragon)(nil)
)

// NewDragon returns a Dragon engine.
func NewDragon(cfg Config) (*Dragon, error) {
	return newUpdateEngine("Dragon", false, cfg)
}

// NewFirefly returns the DEC Firefly update protocol: like Dragon, stale
// copies are updated rather than invalidated, but the update word is also
// written through to main memory, so shared data never goes stale in
// memory and misses to it are served by memory rather than by a cache.
func NewFirefly(cfg Config) (*Dragon, error) {
	return newUpdateEngine("Firefly", true, cfg)
}

func newUpdateEngine(name string, updatesMemory bool, cfg Config) (*Dragon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &Dragon{
		name:          name,
		updatesMemory: updatesMemory,
		cfg:           cfg,
		tab:           blockid.New(),
		replacers:     repl,
	}, nil
}

// Name implements Engine.
func (e *Dragon) Name() string { return e.name }

// Caches implements Engine.
func (e *Dragon) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *Dragon) Stats() *Stats { return &e.stats }

// ResetStats implements Engine: tallies are zeroed, protocol state kept.
func (e *Dragon) ResetStats() { e.stats = Stats{} }

// AccessInstrs implements IndexedEngine: n coalesced instruction fetches.
func (e *Dragon) AccessInstrs(n uint64) {
	e.stats.Refs += n
	e.stats.Events.Add(events.Instr, n)
}

// event records the reference's Table 4 classification.
func (e *Dragon) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
}

func (e *Dragon) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	if op == bus.OpMemRead || op == bus.OpWriteBack {
		e.stats.MemAccesses++
	}
	e.txn = true
}

// BindBlocks implements IndexedEngine.
func (e *Dragon) BindBlocks(t *blockid.Table) bool {
	if e.tab.Len() > 0 {
		return false
	}
	e.tab = t
	return true
}

// Access implements Engine: intern the block and delegate to AccessID.
func (e *Dragon) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	var id blockid.ID
	if kind != trace.Instr {
		id, _ = e.tab.Intern(block)
	}
	return e.AccessID(c, kind, block, id, first)
}

// AccessID implements IndexedEngine.
func (e *Dragon) AccessID(c int, kind trace.Kind, block uint64, id blockid.ID, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, id, first)
	case trace.Write:
		e.write(c, block, id, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *Dragon) read(c int, block uint64, id blockid.ID, first bool) {
	e.st.ensure(id)
	if e.st.sharers[id].Contains(c) {
		e.event(events.ReadHit)
		if e.replacers != nil {
			e.replacers[c].Touch(id)
		}
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fill(c, block, id)
		return
	}
	switch {
	case e.st.memStale[id]:
		// Another cache holds the current value and supplies it over
		// the bus (memory is stale). In Firefly memory snarfs the data
		// as it passes, becoming current again.
		e.event(events.ReadMissDirty)
		e.emit(bus.OpCacheRead)
		if e.updatesMemory {
			e.st.memStale[id] = false
		}
	case !e.st.sharers[id].Empty():
		e.event(events.ReadMissClean)
		e.emit(bus.OpMemRead)
	default:
		e.event(events.ReadMissUncached)
		e.emit(bus.OpMemRead)
	}
	e.fill(c, block, id)
}

func (e *Dragon) write(c int, block uint64, id blockid.ID, first bool) {
	e.st.ensure(id)
	if e.st.sharers[id].Contains(c) {
		if e.replacers != nil {
			e.replacers[c].Touch(id)
		}
		if e.st.sharers[id].ContainsOther(c) {
			// The shared line is pulled: broadcast the word so other
			// copies stay current. Firefly's update also writes the
			// word through to memory.
			e.event(events.WriteHitUpdate)
			e.emit(bus.OpWriteUpdate)
			e.st.memStale[id] = !e.updatesMemory
		} else {
			e.event(events.WriteHitLocal)
			e.st.memStale[id] = true
		}
		return
	}
	if first {
		e.event(events.WriteMissFirst)
		e.fill(c, block, id)
		e.st.memStale[id] = true
		return
	}
	switch {
	case e.st.memStale[id]:
		e.event(events.WriteMissDirty)
		e.emit(bus.OpCacheRead)
	case !e.st.sharers[id].Empty():
		e.event(events.WriteMissClean)
		e.emit(bus.OpMemRead)
	default:
		e.event(events.WriteMissUncached)
		e.emit(bus.OpMemRead)
	}
	hadSharers := !e.st.sharers[id].Empty()
	e.fill(c, block, id)
	if hadSharers {
		// The freshly written word is distributed to the other holders
		// (and, in Firefly, through to memory).
		e.emit(bus.OpWriteUpdate)
		e.st.memStale[id] = !e.updatesMemory
	} else {
		e.st.memStale[id] = true
	}
}

func (e *Dragon) fill(c int, block uint64, id blockid.ID) {
	e.st.sharers[id].Add(c)
	if e.replacers == nil {
		return
	}
	victim, evicted := e.replacers[c].Insert(block, id)
	if !evicted {
		return
	}
	e.stats.Evictions++
	e.st.ensure(victim)
	e.st.sharers[victim].Remove(c)
	if e.st.sharers[victim].Empty() && e.st.memStale[victim] {
		// Last holder of a block memory does not have: flush it.
		e.emit(bus.OpWriteBack)
		e.stats.EvictionWriteBacks++
		e.st.memStale[victim] = false
	}
}

// CheckInvariants implements Engine.
func (e *Dragon) CheckInvariants() error {
	// Slots never written have memStale == false, so only genuinely
	// inconsistent states reach the error arm.
	for i := range e.st.sharers {
		if e.st.memStale[i] && e.st.sharers[i].Empty() {
			return fmt.Errorf("%s: block %#x stale in memory with no cached copy", e.name, e.tab.Block(blockid.ID(i)))
		}
	}
	return nil
}
