package coherence

import (
	"fmt"

	"dirsim/internal/bitset"
	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// Dragon is the Xerox Dragon snoopy update protocol, the paper's
// high-performance comparison point. Instead of invalidating stale copies,
// a write to a shared block broadcasts the new word and every holder
// updates in place; a special "shared" bus line tells the writer whether
// any other cache holds the block. In an infinite cache a block, once
// loaded, stays forever, so Dragon's miss rates are the native miss rates
// of the trace and its dominant cost is the write updates (Table 4's
// wh-distrib row).
type Dragon struct {
	name string
	cfg  Config
	// updatesMemory marks the Firefly variant: a write update also
	// refreshes main memory (write-through for shared data), so memory
	// is only ever stale for blocks written while privately held.
	updatesMemory bool

	stats     Stats
	state     map[uint64]*dragonState
	replacers []cache.Replacer
	txn       bool
	last      events.Type
}

// dragonState is the ground truth for one block under an update protocol:
// who holds copies and whether main memory has the latest value.
type dragonState struct {
	sharers  bitset.Set
	memStale bool
}

var _ Engine = (*Dragon)(nil)

// NewDragon returns a Dragon engine.
func NewDragon(cfg Config) (*Dragon, error) {
	return newUpdateEngine("Dragon", false, cfg)
}

// NewFirefly returns the DEC Firefly update protocol: like Dragon, stale
// copies are updated rather than invalidated, but the update word is also
// written through to main memory, so shared data never goes stale in
// memory and misses to it are served by memory rather than by a cache.
func NewFirefly(cfg Config) (*Dragon, error) {
	return newUpdateEngine("Firefly", true, cfg)
}

func newUpdateEngine(name string, updatesMemory bool, cfg Config) (*Dragon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	repl, err := cfg.newReplacers()
	if err != nil {
		return nil, err
	}
	return &Dragon{
		name:          name,
		updatesMemory: updatesMemory,
		cfg:           cfg,
		state:         map[uint64]*dragonState{},
		replacers:     repl,
	}, nil
}

// Name implements Engine.
func (e *Dragon) Name() string { return e.name }

// Caches implements Engine.
func (e *Dragon) Caches() int { return e.cfg.Caches }

// Stats implements Engine.
func (e *Dragon) Stats() *Stats { return &e.stats }

// ResetStats implements Engine: tallies are zeroed, protocol state kept.
func (e *Dragon) ResetStats() { e.stats = Stats{} }

// event records the reference's Table 4 classification.
func (e *Dragon) event(t events.Type) {
	e.stats.Events.Inc(t)
	e.last = t
}

func (e *Dragon) emit(op bus.Op) {
	e.stats.Ops.Inc(op)
	if op == bus.OpMemRead || op == bus.OpWriteBack {
		e.stats.MemAccesses++
	}
	e.txn = true
}

// Access implements Engine.
func (e *Dragon) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if c < 0 || c >= e.cfg.Caches {
		panic(fmt.Sprintf("coherence: cache id %d out of range [0,%d)", c, e.cfg.Caches))
	}
	e.stats.Refs++
	e.txn = false
	switch kind {
	case trace.Instr:
		e.event(events.Instr)
	case trace.Read:
		e.read(c, block, first)
	case trace.Write:
		e.write(c, block, first)
	}
	if e.txn {
		e.stats.Transactions++
	}
	if kind != trace.Instr {
		e.stats.recordPerCache(c, e.cfg.Caches, e.last)
	}
	return e.last
}

func (e *Dragon) get(block uint64) *dragonState { return e.state[block] }

func (e *Dragon) ensure(block uint64) *dragonState {
	ds := e.state[block]
	if ds == nil {
		ds = &dragonState{}
		e.state[block] = ds
	}
	return ds
}

func (e *Dragon) read(c int, block uint64, first bool) {
	ds := e.get(block)
	if ds != nil && ds.sharers.Contains(c) {
		e.event(events.ReadHit)
		if e.replacers != nil {
			e.replacers[c].Touch(block)
		}
		return
	}
	if first {
		e.event(events.ReadMissFirst)
		e.fill(c, block)
		return
	}
	switch {
	case ds != nil && ds.memStale:
		// Another cache holds the current value and supplies it over
		// the bus (memory is stale). In Firefly memory snarfs the data
		// as it passes, becoming current again.
		e.event(events.ReadMissDirty)
		e.emit(bus.OpCacheRead)
		if e.updatesMemory {
			ds.memStale = false
		}
	case ds != nil && !ds.sharers.Empty():
		e.event(events.ReadMissClean)
		e.emit(bus.OpMemRead)
	default:
		e.event(events.ReadMissUncached)
		e.emit(bus.OpMemRead)
	}
	e.fill(c, block)
}

func (e *Dragon) write(c int, block uint64, first bool) {
	ds := e.get(block)
	if ds != nil && ds.sharers.Contains(c) {
		if e.replacers != nil {
			e.replacers[c].Touch(block)
		}
		if ds.sharers.ContainsOther(c) {
			// The shared line is pulled: broadcast the word so other
			// copies stay current. Firefly's update also writes the
			// word through to memory.
			e.event(events.WriteHitUpdate)
			e.emit(bus.OpWriteUpdate)
			ds.memStale = !e.updatesMemory
		} else {
			e.event(events.WriteHitLocal)
			ds.memStale = true
		}
		return
	}
	if first {
		e.event(events.WriteMissFirst)
		e.fill(c, block)
		e.ensure(block).memStale = true
		return
	}
	switch {
	case ds != nil && ds.memStale:
		e.event(events.WriteMissDirty)
		e.emit(bus.OpCacheRead)
	case ds != nil && !ds.sharers.Empty():
		e.event(events.WriteMissClean)
		e.emit(bus.OpMemRead)
	default:
		e.event(events.WriteMissUncached)
		e.emit(bus.OpMemRead)
	}
	hadSharers := ds != nil && !ds.sharers.Empty()
	e.fill(c, block)
	ds = e.ensure(block)
	if hadSharers {
		// The freshly written word is distributed to the other holders
		// (and, in Firefly, through to memory).
		e.emit(bus.OpWriteUpdate)
		ds.memStale = !e.updatesMemory
	} else {
		ds.memStale = true
	}
}

func (e *Dragon) fill(c int, block uint64) {
	ds := e.ensure(block)
	ds.sharers.Add(c)
	if e.replacers == nil {
		return
	}
	victim, evicted := e.replacers[c].Insert(block)
	if !evicted {
		return
	}
	e.stats.Evictions++
	vs := e.get(victim)
	if vs == nil {
		return
	}
	vs.sharers.Remove(c)
	if vs.sharers.Empty() {
		if vs.memStale {
			// Last holder of a block memory does not have: flush it.
			e.emit(bus.OpWriteBack)
			e.stats.EvictionWriteBacks++
			vs.memStale = false
		}
		delete(e.state, victim)
	}
}

// CheckInvariants implements Engine.
func (e *Dragon) CheckInvariants() error {
	for block, ds := range e.state {
		if ds.memStale && ds.sharers.Empty() {
			return fmt.Errorf("%s: block %#x stale in memory with no cached copy", e.name, block)
		}
	}
	return nil
}
