package coherence

import (
	"fmt"
	"strings"
)

// This file implements the Inspector interface for every engine family:
// canonical protocol-state keys for the model checker in internal/mc, and
// the ground-truth abstraction its coverage report is phrased in. Keys are
// built per block in the caller's block order, so equal keys mean equal
// state over the blocks the checker explores.
//
// Blocks the engine has never interned have no state by construction and
// render exactly like an absent entry of the map representation this
// replaced; interned ids are bounds-checked against the state arrays
// because a shared block-id table can know ids this engine has not grown
// its arrays to yet.

// Compile-time proof that every scheme NewByName can return is
// inspectable; mc relies on the type assertion never failing.
var (
	_ Inspector = (*DirEngine)(nil)
	_ Inspector = (*Berkeley)(nil)
	_ Inspector = (*SnoopyInval)(nil)
	_ Inspector = (*Dragon)(nil)
	_ Inspector = (*MOESI)(nil)
	_ Inspector = (*Competitive)(nil)
	_ Inspector = (*ReadBroadcast)(nil)
)

// Compile-time proof that every engine family supports id-indexed access;
// the simulator's interned dispatch relies on the assertion never failing.
var (
	_ IndexedEngine = (*DirEngine)(nil)
	_ IndexedEngine = (*Berkeley)(nil)
	_ IndexedEngine = (*SnoopyInval)(nil)
	_ IndexedEngine = (*Dragon)(nil)
	_ IndexedEngine = (*MOESI)(nil)
	_ IndexedEngine = (*Competitive)(nil)
	_ IndexedEngine = (*ReadBroadcast)(nil)
)

// StateKey implements Inspector: ground truth plus the directory store's
// per-block memory, which can lag the truth (TwoBit cannot forget holders,
// coded sets only widen) and therefore changes future behaviour.
func (e *DirEngine) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		id, ok := e.tab.Lookup(blk)
		e.state.appendKey(&b, id, ok)
		b.WriteString("/")
		if ok {
			b.WriteString(e.store.BlockKey(id))
		}
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *DirEngine) Truth(block uint64) ([]int, bool) {
	id, ok := e.tab.Lookup(block)
	return e.state.truth(id, ok)
}

// StateKey implements Inspector: snoopy engines carry no directory, so the
// ground-truth table is the whole state.
func (e *SnoopyInval) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		id, ok := e.tab.Lookup(blk)
		e.state.appendKey(&b, id, ok)
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *SnoopyInval) Truth(block uint64) ([]int, bool) {
	id, ok := e.tab.Lookup(block)
	return e.state.truth(id, ok)
}

// StateKey implements Inspector: holder set plus the memory-stale bit (an
// update protocol has no single owner — every copy is current).
func (e *Dragon) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		id, ok := e.tab.Lookup(blk)
		if !ok || int(id) >= len(e.st.sharers) || e.st.sharers[id].Empty() {
			b.WriteString("-")
		} else {
			b.WriteString(e.st.sharers[id].String())
			if e.st.memStale[id] {
				b.WriteString("!")
			}
		}
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *Dragon) Truth(block uint64) ([]int, bool) {
	id, ok := e.tab.Lookup(block)
	if !ok || int(id) >= len(e.st.sharers) || e.st.sharers[id].Empty() {
		return nil, false
	}
	return e.st.sharers[id].Elems(), e.st.memStale[id]
}

// StateKey implements Inspector: holder set, staleness, and the owner
// responsible for the stale memory copy (dirty sharing distinguishes
// states MESI-family keys cannot reach).
func (e *MOESI) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		id, ok := e.tab.Lookup(blk)
		if !ok || int(id) >= len(e.st.sharers) || e.st.sharers[id].Empty() {
			b.WriteString("-")
		} else {
			b.WriteString(e.st.sharers[id].String())
			if e.st.memStale[id] {
				fmt.Fprintf(&b, "!%d", e.st.owner[id])
			}
		}
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *MOESI) Truth(block uint64) ([]int, bool) {
	id, ok := e.tab.Lookup(block)
	if !ok || int(id) >= len(e.st.sharers) || e.st.sharers[id].Empty() {
		return nil, false
	}
	return e.st.sharers[id].Elems(), e.st.memStale[id]
}

// StateKey implements Inspector: holder set, staleness, and every holder's
// absorbed-update counter. A counter exists exactly for the holders (it is
// zeroed when a copy drops), so iterating the sharer set ascending matches
// the sorted-key order the map representation printed.
func (e *Competitive) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		id, ok := e.tab.Lookup(blk)
		if !ok || int(id) >= len(e.st.sharers) || e.st.sharers[id].Empty() {
			b.WriteString("-")
		} else {
			b.WriteString(e.st.sharers[id].String())
			if e.st.memStale[id] {
				b.WriteString("!")
			}
			base := int(id) * e.cfg.Caches
			for h := e.st.sharers[id].Next(0); h >= 0; h = e.st.sharers[id].Next(h + 1) {
				fmt.Fprintf(&b, "u%d=%d", h, e.st.unused[base+h])
			}
		}
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *Competitive) Truth(block uint64) ([]int, bool) {
	id, ok := e.tab.Lookup(block)
	if !ok || int(id) >= len(e.st.sharers) || e.st.sharers[id].Empty() {
		return nil, false
	}
	return e.st.sharers[id].Elems(), e.st.memStale[id]
}

// StateKey implements Inspector: holder set, written state, and the
// snarfer set waiting to refill off the next bus read.
func (e *ReadBroadcast) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		id, ok := e.tab.Lookup(blk)
		if !ok || int(id) >= len(e.st.sharers) || (e.st.sharers[id].Empty() && e.st.snarfers[id].Empty()) {
			b.WriteString("-")
		} else {
			b.WriteString(e.st.sharers[id].String())
			if e.st.dirty[id] {
				fmt.Fprintf(&b, "!%d", e.st.owner[id])
			}
			if !e.st.snarfers[id].Empty() {
				b.WriteString("s")
				b.WriteString(e.st.snarfers[id].String())
			}
		}
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *ReadBroadcast) Truth(block uint64) ([]int, bool) {
	id, ok := e.tab.Lookup(block)
	if !ok || int(id) >= len(e.st.sharers) || e.st.sharers[id].Empty() {
		return nil, false
	}
	return e.st.sharers[id].Elems(), e.st.dirty[id]
}
