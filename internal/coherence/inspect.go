package coherence

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the Inspector interface for every engine family:
// canonical protocol-state keys for the model checker in internal/mc, and
// the ground-truth abstraction its coverage report is phrased in. Keys are
// built per block in the caller's block order, so equal keys mean equal
// state over the blocks the checker explores.

// Compile-time proof that every scheme NewByName can return is
// inspectable; mc relies on the type assertion never failing.
var (
	_ Inspector = (*DirEngine)(nil)
	_ Inspector = (*Berkeley)(nil)
	_ Inspector = (*SnoopyInval)(nil)
	_ Inspector = (*Dragon)(nil)
	_ Inspector = (*MOESI)(nil)
	_ Inspector = (*Competitive)(nil)
	_ Inspector = (*ReadBroadcast)(nil)
)

// StateKey implements Inspector: ground truth plus the directory store's
// per-block memory, which can lag the truth (TwoBit cannot forget holders,
// coded sets only widen) and therefore changes future behaviour.
func (e *DirEngine) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		e.state.appendKey(&b, blk)
		b.WriteString("/")
		b.WriteString(e.store.BlockKey(blk))
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *DirEngine) Truth(block uint64) ([]int, bool) {
	return e.state.truth(block)
}

// StateKey implements Inspector: snoopy engines carry no directory, so the
// ground-truth table is the whole state.
func (e *SnoopyInval) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		e.state.appendKey(&b, blk)
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *SnoopyInval) Truth(block uint64) ([]int, bool) {
	return e.state.truth(block)
}

// StateKey implements Inspector: holder set plus the memory-stale bit (an
// update protocol has no single owner — every copy is current).
func (e *Dragon) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		ds := e.state[blk]
		if ds == nil || ds.sharers.Empty() {
			b.WriteString("-")
		} else {
			b.WriteString(ds.sharers.String())
			if ds.memStale {
				b.WriteString("!")
			}
		}
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *Dragon) Truth(block uint64) ([]int, bool) {
	ds := e.state[block]
	if ds == nil || ds.sharers.Empty() {
		return nil, false
	}
	return ds.sharers.Elems(), ds.memStale
}

// StateKey implements Inspector: holder set, staleness, and the owner
// responsible for the stale memory copy (dirty sharing distinguishes
// states MESI-family keys cannot reach).
func (e *MOESI) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		ms := e.state[blk]
		if ms == nil || ms.sharers.Empty() {
			b.WriteString("-")
		} else {
			b.WriteString(ms.sharers.String())
			if ms.memStale {
				fmt.Fprintf(&b, "!%d", ms.owner)
			}
		}
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *MOESI) Truth(block uint64) ([]int, bool) {
	ms := e.state[block]
	if ms == nil || ms.sharers.Empty() {
		return nil, false
	}
	return ms.sharers.Elems(), ms.memStale
}

// StateKey implements Inspector: holder set, staleness, and every holder's
// absorbed-update counter (sorted by holder — the counter map has no
// iteration order of its own).
func (e *Competitive) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		cs := e.state[blk]
		if cs == nil || cs.sharers.Empty() {
			b.WriteString("-")
		} else {
			b.WriteString(cs.sharers.String())
			if cs.memStale {
				b.WriteString("!")
			}
			hs := make([]int, 0, len(cs.unused))
			for h := range cs.unused {
				hs = append(hs, h)
			}
			sort.Ints(hs)
			for _, h := range hs {
				fmt.Fprintf(&b, "u%d=%d", h, cs.unused[h])
			}
		}
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *Competitive) Truth(block uint64) ([]int, bool) {
	cs := e.state[block]
	if cs == nil || cs.sharers.Empty() {
		return nil, false
	}
	return cs.sharers.Elems(), cs.memStale
}

// StateKey implements Inspector: holder set, written state, and the
// snarfer set waiting to refill off the next bus read.
func (e *ReadBroadcast) StateKey(blocks []uint64) string {
	var b strings.Builder
	for _, blk := range blocks {
		fmt.Fprintf(&b, "b%d:", blk)
		bs := e.state[blk]
		if bs == nil || (bs.sharers.Empty() && bs.snarfers.Empty()) {
			b.WriteString("-")
		} else {
			b.WriteString(bs.sharers.String())
			if bs.dirty {
				fmt.Fprintf(&b, "!%d", bs.owner)
			}
			if !bs.snarfers.Empty() {
				b.WriteString("s")
				b.WriteString(bs.snarfers.String())
			}
		}
		b.WriteString(";")
	}
	return b.String()
}

// Truth implements Inspector.
func (e *ReadBroadcast) Truth(block uint64) ([]int, bool) {
	bs := e.state[block]
	if bs == nil || bs.sharers.Empty() {
		return nil, false
	}
	return bs.sharers.Elems(), bs.dirty
}
