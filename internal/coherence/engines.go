package coherence

import (
	"fmt"
	"strconv"
	"strings"
)

// Section3Engines returns the four schemes the paper's Section 3 evaluates
// head-to-head, in the paper's order: Dir1NB, WTI, Dir0B, Dragon.
func Section3Engines(cfg Config) ([]Engine, error) {
	dir1nb, err := NewDir1NB(cfg)
	if err != nil {
		return nil, err
	}
	wti, err := NewWTI(cfg)
	if err != nil {
		return nil, err
	}
	dir0b, err := NewDir0B(cfg)
	if err != nil {
		return nil, err
	}
	dragon, err := NewDragon(cfg)
	if err != nil {
		return nil, err
	}
	return []Engine{dir1nb, wti, dir0b, dragon}, nil
}

// EngineNames lists every scheme NewByName accepts (with i = 2 where a
// pointer count is required; any positive i works in the dir<i>… forms).
func EngineNames() []string {
	return []string{
		"dir1nb", "dir2nb", "dirnnb", "dir0b", "dir1b", "dir2b",
		"codedset", "tang", "wti", "dragon", "berkeley",
		"mesi", "moesi", "writeonce", "firefly", "competitive4", "readbroadcast",
	}
}

// NewByName constructs an engine from a scheme name such as "dir1nb",
// "dir0b", "dir4b", "dirnnb", "codedset", "tang", "wti", "dragon" or
// "berkeley". Names are case-insensitive.
func NewByName(name string, cfg Config) (Engine, error) {
	n := strings.ToLower(strings.TrimSpace(name))
	switch n {
	case "dirnnb", "fullmap", "censier-feautrier":
		return NewDirnNB(cfg)
	case "dir0b", "archibald-baer", "twobit":
		return NewDir0B(cfg)
	case "codedset", "coded", "coded-set":
		return NewCodedSet(cfg)
	case "tang":
		return NewTang(cfg)
	case "wti":
		return NewWTI(cfg)
	case "dragon":
		return NewDragon(cfg)
	case "berkeley":
		return NewBerkeley(cfg)
	case "mesi", "illinois":
		return NewMESI(cfg)
	case "moesi":
		return NewMOESI(cfg)
	case "writeonce", "write-once", "goodman":
		return NewWriteOnce(cfg)
	case "firefly":
		return NewFirefly(cfg)
	case "readbroadcast", "read-broadcast", "rudolph-segall":
		return NewReadBroadcast(cfg)
	}
	if rest, ok := strings.CutPrefix(n, "competitive"); ok {
		k, err := strconv.Atoi(rest)
		if err == nil && k >= 1 {
			return NewCompetitive(k, cfg)
		}
	}
	if rest, ok := strings.CutPrefix(n, "dir"); ok {
		if num, ok := strings.CutSuffix(rest, "nb"); ok {
			i, err := strconv.Atoi(num)
			if err == nil && i >= 1 {
				return NewDiriNB(i, cfg)
			}
		} else if num, ok := strings.CutSuffix(rest, "b"); ok {
			i, err := strconv.Atoi(num)
			if err == nil && i >= 1 {
				return NewDiriB(i, cfg)
			}
		}
	}
	return nil, fmt.Errorf("coherence: unknown scheme %q (known: %s, plus dir<i>b / dir<i>nb)",
		name, strings.Join(EngineNames(), ", "))
}
