package coherence

import (
	"strings"
	"testing"

	"dirsim/internal/trace"
)

// TestEngineNamesRoundTrip keeps the registry closed in both directions:
// every advertised name constructs an engine (case-insensitively), no two
// names construct engines that claim the same display name, and the
// parametric families parse.
func TestEngineNamesRoundTrip(t *testing.T) {
	cfg := Config{Caches: 4}
	display := map[string]string{}
	for _, name := range EngineNames() {
		e, err := NewByName(name, cfg)
		if err != nil {
			t.Fatalf("EngineNames advertises %q but NewByName fails: %v", name, err)
		}
		if e == nil {
			t.Fatalf("%q: nil engine without error", name)
		}
		if prev, dup := display[e.Name()]; dup {
			t.Errorf("%q and %q both construct engine %q", prev, name, e.Name())
		}
		display[e.Name()] = name

		upper, err := NewByName(strings.ToUpper(name), cfg)
		if err != nil {
			t.Errorf("%q: uppercase spelling rejected: %v", name, err)
		} else if upper.Name() != e.Name() {
			t.Errorf("%q: case changes the engine (%q vs %q)", name, upper.Name(), e.Name())
		}
	}
	for _, parametric := range []string{"dir3nb", "dir8b", "competitive2"} {
		if _, err := NewByName(parametric, cfg); err != nil {
			t.Errorf("parametric family member %q rejected: %v", parametric, err)
		}
	}
}

func TestNewByNameRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"", "nope", "dir", "dirxnb", "dir0nb", "competitive0", "competitive-1", "dirb"} {
		if _, err := NewByName(bad, Config{Caches: 4}); err == nil {
			t.Errorf("NewByName(%q) accepted", bad)
		}
	}
}

// FuzzNewByName throws arbitrary names at the registry: any accepted name
// must yield a working engine whose invariants hold before and after a
// couple of references, and the contract error==nil ⇔ engine!=nil must
// never break.
func FuzzNewByName(f *testing.F) {
	for _, name := range EngineNames() {
		f.Add(name)
	}
	for _, seed := range []string{
		"DIR1NB", " dirnnb ", "fullmap", "censier-feautrier", "archibald-baer",
		"twobit", "coded-set", "illinois", "goodman", "rudolph-segall",
		"dir12b", "dir999nb", "competitive16", "competitive",
		"", "dir", "dir-1b", "dir1nbx", "no such scheme", "dir0b\x00",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		e, err := NewByName(name, Config{Caches: 2})
		if err != nil {
			if e != nil {
				t.Fatalf("NewByName(%q) returned both engine and error %v", name, err)
			}
			return
		}
		if e == nil {
			t.Fatalf("NewByName(%q) returned nil engine without error", name)
		}
		if e.Name() == "" {
			t.Fatalf("NewByName(%q): engine has empty display name", name)
		}
		if e.Caches() != 2 {
			t.Fatalf("NewByName(%q): engine simulates %d caches, want 2", name, e.Caches())
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("NewByName(%q): fresh engine violates invariants: %v", name, err)
		}
		e.Access(0, trace.Read, 1, true)
		e.Access(1, trace.Write, 1, false)
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("NewByName(%q): invariants violated after two references: %v", name, err)
		}
	})
}
