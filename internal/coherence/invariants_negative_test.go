package coherence

import (
	"strings"
	"testing"

	"dirsim/internal/trace"
)

// The soundness tests (oracle, exhaustive, internal/mc) prove the checkers
// stay silent on legal state. This file proves the other half: each engine
// family's CheckInvariants actually fires when its state is corrupted, so
// a silent checker can never be mistaken for a sound protocol.
func TestCheckInvariantsFiresOnCorruption(t *testing.T) {
	const blk = uint64(1)
	cases := []struct {
		scheme string
		// corrupt damages the engine's internal state after a legal
		// warm-up and returns a substring the error must contain.
		corrupt func(t *testing.T, e Engine) string
	}{
		{"dir1nb", func(t *testing.T, e Engine) string {
			// A dirty block whose recorded owner holds no copy.
			de := e.(*DirEngine)
			id, _ := de.tab.Lookup(blk)
			de.state.dirty[id] = true
			de.state.owner[id] = 2
			return "owner"
		}},
		{"dirnnb", func(t *testing.T, e Engine) string {
			// Ground truth gains a holder the full map never recorded.
			de := e.(*DirEngine)
			id, _ := de.tab.Lookup(blk)
			de.state.sharers[id].Add(1)
			return "holders"
		}},
		{"berkeley", func(t *testing.T, e Engine) string {
			// Berkeley wraps Dir0B: a dirty block must have one holder.
			de := e.(*Berkeley).DirEngine
			id, _ := de.tab.Lookup(blk)
			de.state.dirty[id] = true
			de.state.owner[id] = 1 // not the actual holder
			return "owner"
		}},
		{"wti", func(t *testing.T, e Engine) string {
			se := e.(*SnoopyInval)
			id, _ := se.tab.Lookup(blk)
			se.state.sharers[id].Add(1)
			return "written-state"
		}},
		{"dragon", func(t *testing.T, e Engine) string {
			// Stale memory with no cached copy left to supply the data.
			d := e.(*Dragon)
			id, _ := d.tab.Lookup(blk)
			d.st.memStale[id] = true
			d.st.sharers[id].Remove(0)
			return "stale"
		}},
		{"moesi", func(t *testing.T, e Engine) string {
			m := e.(*MOESI)
			id, _ := m.tab.Lookup(blk)
			m.st.memStale[id] = true
			m.st.owner[id] = 3 // holds no copy
			return "owner"
		}},
		{"competitive4", func(t *testing.T, e Engine) string {
			// An update counter for a cache that holds no copy.
			c := e.(*Competitive)
			id, _ := c.tab.Lookup(blk)
			c.st.unused[int(id)*c.cfg.Caches+3] = 1
			return "non-holder"
		}},
		{"readbroadcast", func(t *testing.T, e Engine) string {
			// A cache cannot both hold the block and wait to snarf it.
			r := e.(*ReadBroadcast)
			id, _ := r.tab.Lookup(blk)
			r.st.snarfers[id].Add(0)
			return "snarfer"
		}},
	}
	for _, c := range cases {
		t.Run(c.scheme, func(t *testing.T) {
			e, err := NewByName(c.scheme, Config{Caches: 4})
			if err != nil {
				t.Fatal(err)
			}
			// Legal warm-up: cache 0 reads then writes the block, so the
			// block has state to corrupt.
			e.Access(0, trace.Read, blk, true)
			if c.scheme == "wti" {
				e.Access(0, trace.Write, blk, false)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("invariants violated before corruption: %v", err)
			}
			want := c.corrupt(t, e)
			err = e.CheckInvariants()
			if err == nil {
				t.Fatalf("%s: corrupted state passed CheckInvariants", c.scheme)
			}
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", c.scheme, err, want)
			}
		})
	}
}
