package coherence

// Exhaustive small-state model checking: instead of sampling random
// streams, enumerate EVERY reference sequence in a small universe and
// check each engine against its oracle and its invariants. With 2 caches,
// 1 block and {read, write} per step, depth 9 gives 4^9 = 262,144
// sequences — enough to cover every reachable protocol-state/action pair
// several times over, far beyond what random testing reaches reliably.

import (
	"fmt"
	"testing"

	"dirsim/internal/trace"
)

// exhaustCheck runs every sequence of `depth` (cache, kind) choices over a
// single block through a fresh engine + oracle pair.
func exhaustCheck(t *testing.T, depth int, mk func() (Engine, error), mkOracle func() oracle) {
	t.Helper()
	const caches = 2
	type step struct {
		c    int
		kind trace.Kind
	}
	choices := []step{
		{0, trace.Read}, {0, trace.Write},
		{1, trace.Read}, {1, trace.Write},
	}
	total := 1
	for i := 0; i < depth; i++ {
		total *= len(choices)
	}
	for seq := 0; seq < total; seq++ {
		e, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		o := mkOracle()
		n := seq
		firstSeen := false
		for d := 0; d < depth; d++ {
			s := choices[n%len(choices)]
			n /= len(choices)
			first := !firstSeen
			firstSeen = true
			want := o.predict(s.c, s.kind, 1, first)
			got := e.Access(s.c, s.kind, 1, first)
			if got != want {
				t.Fatalf("%s: sequence %d step %d (cache %d %v): engine %v, oracle %v",
					e.Name(), seq, d, s.c, s.kind, got, want)
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("sequence %d: %v", seq, err)
		}
	}
}

func TestExhaustiveSmallState(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	cases := []struct {
		name     string
		mk       func() (Engine, error)
		mkOracle func() oracle
		depth    int
	}{
		{"Dir0B", func() (Engine, error) { return NewDir0B(Config{Caches: 2}) }, func() oracle { return newMRSW() }, 9},
		{"DirnNB", func() (Engine, error) { return NewDirnNB(Config{Caches: 2}) }, func() oracle { return newMRSW() }, 8},
		{"Dir2B", func() (Engine, error) { return NewDiriB(2, Config{Caches: 2}) }, func() oracle { return newMRSW() }, 8},
		{"CodedSet", func() (Engine, error) { return NewCodedSet(Config{Caches: 2}) }, func() oracle { return newMRSW() }, 8},
		{"WTI", func() (Engine, error) { return NewWTI(Config{Caches: 2}) }, func() oracle { return newMRSW() }, 8},
		{"MESI", func() (Engine, error) { return NewMESI(Config{Caches: 2}) }, func() oracle { return newMRSW() }, 8},
		{"WriteOnce", func() (Engine, error) { return NewWriteOnce(Config{Caches: 2}) }, func() oracle { return newMRSW() }, 8},
		{"Dir1NB", func() (Engine, error) { return NewDir1NB(Config{Caches: 2}) }, func() oracle { return newExclusive() }, 9},
		{"Dragon", func() (Engine, error) { return NewDragon(Config{Caches: 2}) }, func() oracle { return newDragonOracle() }, 9},
		{"Firefly", func() (Engine, error) { return NewFirefly(Config{Caches: 2}) },
			func() oracle { return &fireflyOracle{dragonOracle: *newDragonOracle()} }, 9},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			exhaustCheck(t, c.depth, c.mk, c.mkOracle)
		})
	}
}

// Exhaustive two-block interleaving at shallower depth: catches cross-block
// state leaks a single-block walk cannot.
func TestExhaustiveTwoBlocks(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive enumeration skipped in -short mode")
	}
	const depth = 6
	type step struct {
		c     int
		kind  trace.Kind
		block uint64
	}
	var choices []step
	for c := 0; c < 2; c++ {
		for _, k := range []trace.Kind{trace.Read, trace.Write} {
			for b := uint64(1); b <= 2; b++ {
				choices = append(choices, step{c, k, b})
			}
		}
	}
	total := 1
	for i := 0; i < depth; i++ {
		total *= len(choices) // 8^6 = 262,144
	}
	mks := map[string]func() (Engine, error){
		"Dir0B":  func() (Engine, error) { return NewDir0B(Config{Caches: 2}) },
		"Dir1NB": func() (Engine, error) { return NewDir1NB(Config{Caches: 2}) },
		"Dragon": func() (Engine, error) { return NewDragon(Config{Caches: 2}) },
	}
	oracles := map[string]func() oracle{
		"Dir0B":  func() oracle { return newMRSW() },
		"Dir1NB": func() oracle { return newExclusive() },
		"Dragon": func() oracle { return newDragonOracle() },
	}
	for name, mk := range mks {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			mkO := oracles[name]
			for seq := 0; seq < total; seq++ {
				e, err := mk()
				if err != nil {
					t.Fatal(err)
				}
				o := mkO()
				n := seq
				seen := map[uint64]bool{}
				for d := 0; d < depth; d++ {
					s := choices[n%len(choices)]
					n /= len(choices)
					first := !seen[s.block]
					seen[s.block] = true
					want := o.predict(s.c, s.kind, s.block, first)
					got := e.Access(s.c, s.kind, s.block, first)
					if got != want {
						t.Fatalf("sequence %d step %d %+v: engine %v, oracle %v",
							seq, d, s, got, want)
					}
				}
				if err := e.CheckInvariants(); err != nil {
					t.Fatalf("sequence %d: %v", seq, err)
				}
			}
		})
	}
}

// Sanity on the enumeration arithmetic so the tests above cover what the
// comments claim.
func TestExhaustiveUniverseSizes(t *testing.T) {
	if got := fmt.Sprintf("%d", 1<<18); got != "262144" {
		t.Fatalf("arithmetic drifted: %s", got)
	}
}
