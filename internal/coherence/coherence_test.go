package coherence

import (
	"math/rand"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// feeder drives an engine the way the simulation driver does, tracking
// first references globally.
type feeder struct {
	seen map[uint64]bool
	engs []Engine
}

func newFeeder(engs ...Engine) *feeder {
	return &feeder{seen: map[uint64]bool{}, engs: engs}
}

func (f *feeder) access(c int, kind trace.Kind, block uint64) {
	first := false
	if kind != trace.Instr && !f.seen[block] {
		f.seen[block] = true
		first = true
	}
	for _, e := range f.engs {
		e.Access(c, kind, block, first)
	}
}

func (f *feeder) read(c int, b uint64)  { f.access(c, trace.Read, b) }
func (f *feeder) write(c int, b uint64) { f.access(c, trace.Write, b) }

func cfg4() Config { return Config{Caches: 4} }

// must unwraps a constructor result, failing the test via panic on error.
func must[E any](e E, err error) E {
	if err != nil {
		panic(err)
	}
	return e
}

func wantEvent(t *testing.T, st *Stats, ty events.Type, n uint64) {
	t.Helper()
	if st.Events[ty] != n {
		t.Errorf("event %v = %d, want %d", ty, st.Events[ty], n)
	}
}

func wantOp(t *testing.T, st *Stats, op bus.Op, n uint64) {
	t.Helper()
	if st.Ops[op] != n {
		t.Errorf("op %v = %d, want %d", op, st.Ops[op], n)
	}
}

// --- Config ------------------------------------------------------------------

func TestConfigValidate(t *testing.T) {
	if err := (Config{Caches: 4}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Caches: 0},
		{Caches: 4, FiniteSets: 4},                // ways missing
		{Caches: 4, FiniteWays: 2},                // sets missing
		{Caches: 4, FiniteSets: 3, FiniteWays: 2}, // sets not power of 2
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// --- Dir0B ------------------------------------------------------------------

func TestDir0BReadSharingCostsNothingExtra(t *testing.T) {
	e := must(NewDir0B(cfg4()))
	f := newFeeder(e)
	f.read(0, 1) // first ref: free
	f.read(1, 1) // rm-blk-cln: memory supplies
	f.read(2, 1)
	f.read(0, 1) // hit
	st := e.Stats()
	wantEvent(t, st, events.ReadMissFirst, 1)
	wantEvent(t, st, events.ReadMissClean, 2)
	wantEvent(t, st, events.ReadHit, 1)
	wantOp(t, st, bus.OpMemRead, 2)
	wantOp(t, st, bus.OpInvalidate, 0)
	wantOp(t, st, bus.OpBroadcastInvalidate, 0)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDir0BWriteHitCleanSoleAvoidsBroadcast(t *testing.T) {
	// The Archibald–Baer "block clean in exactly one cache" state: a
	// write hit by the lone holder needs a directory check but no
	// broadcast.
	e := must(NewDir0B(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)  // first
	f.write(0, 1) // wh-blk-cln, sole
	st := e.Stats()
	wantEvent(t, st, events.WriteHitCleanSole, 1)
	wantOp(t, st, bus.OpDirCheck, 1)
	wantOp(t, st, bus.OpBroadcastInvalidate, 0)
	if st.InvalFanout.Total() != 1 || st.InvalFanout.Counts[0] != 1 {
		t.Errorf("fanout histogram = %v", st.InvalFanout.Counts)
	}
}

func TestDir0BWriteHitSharedBroadcasts(t *testing.T) {
	e := must(NewDir0B(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.read(2, 1)
	f.write(0, 1) // clean in 2 other caches → broadcast invalidate
	st := e.Stats()
	wantEvent(t, st, events.WriteHitCleanShared, 1)
	wantOp(t, st, bus.OpDirCheck, 1)
	wantOp(t, st, bus.OpBroadcastInvalidate, 1)
	if st.InvalFanout.Counts[2] != 1 {
		t.Errorf("fanout histogram = %v, want one observation of 2", st.InvalFanout.Counts)
	}
	// The other copies are gone: cache 1 now misses.
	f.read(1, 1)
	wantEvent(t, st, events.ReadMissDirty, 1)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDir0BWriteMissDirtyFlushes(t *testing.T) {
	e := must(NewDir0B(cfg4()))
	f := newFeeder(e)
	f.write(0, 1) // first ref: free, dirty in cache 0
	f.write(1, 1) // wm-blk-drty: broadcast request + write-back
	st := e.Stats()
	wantEvent(t, st, events.WriteMissFirst, 1)
	wantEvent(t, st, events.WriteMissDirty, 1)
	wantOp(t, st, bus.OpWriteBack, 1)
	wantOp(t, st, bus.OpBroadcastInvalidate, 1)
	wantOp(t, st, bus.OpMemRead, 0) // data arrives with the write-back
	// Cache 0's copy was invalidated.
	f.read(0, 1)
	wantEvent(t, st, events.ReadMissDirty, 1)
}

func TestDir0BWriteHitDirtyIsFree(t *testing.T) {
	e := must(NewDir0B(cfg4()))
	f := newFeeder(e)
	f.write(0, 1)
	f.write(0, 1) // wh-blk-drty: proceeds immediately
	f.write(0, 1)
	st := e.Stats()
	wantEvent(t, st, events.WriteHitDirty, 2)
	if st.Ops.Total() != 0 {
		t.Errorf("dirty write hits emitted ops: %v", st.Ops)
	}
	if st.Transactions != 0 {
		t.Errorf("Transactions = %d, want 0", st.Transactions)
	}
}

func TestDir0BReadMissDirtyOwnerKeepsCopy(t *testing.T) {
	e := must(NewDir0B(cfg4()))
	f := newFeeder(e)
	f.write(0, 1)
	f.read(1, 1) // rm-blk-drty: flush; owner keeps a clean copy
	f.read(0, 1) // still a hit for the old owner
	st := e.Stats()
	wantEvent(t, st, events.ReadMissDirty, 1)
	wantEvent(t, st, events.ReadHit, 1)
	wantOp(t, st, bus.OpWriteBack, 1)
}

// --- Dir1NB -----------------------------------------------------------------

func TestDir1NBSingleCopyPingPong(t *testing.T) {
	e := must(NewDir1NB(cfg4()))
	f := newFeeder(e)
	f.read(0, 1) // first
	f.read(1, 1) // rm-blk-cln: invalidate 0, fetch from memory
	f.read(0, 1) // rm-blk-cln again: ping-pong
	f.read(1, 1)
	st := e.Stats()
	wantEvent(t, st, events.ReadMissClean, 3)
	wantEvent(t, st, events.ReadHit, 0)
	wantOp(t, st, bus.OpMemRead, 3)
	wantOp(t, st, bus.OpInvalidate, 3)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDir1NBWriteHitFree(t *testing.T) {
	// Exclusivity means a write hit needs no directory interaction even
	// on a clean block.
	e := must(NewDir1NB(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.write(0, 1)
	st := e.Stats()
	wantEvent(t, st, events.WriteHitCleanSole, 1)
	if st.Ops.Total() != 0 {
		t.Errorf("Dir1NB clean write hit emitted ops: %v", st.Ops)
	}
}

func TestDir1NBDirtyTransfer(t *testing.T) {
	e := must(NewDir1NB(cfg4()))
	f := newFeeder(e)
	f.write(0, 1) // first, dirty at 0
	f.read(1, 1)  // rm-blk-drty: invalidate+write-back, data to requester
	st := e.Stats()
	wantEvent(t, st, events.ReadMissDirty, 1)
	wantOp(t, st, bus.OpInvalidate, 1)
	wantOp(t, st, bus.OpWriteBack, 1)
	wantOp(t, st, bus.OpMemRead, 0)
	// Old owner lost its copy (single-copy scheme).
	f.read(0, 1)
	wantEvent(t, st, events.ReadMissClean, 1)
}

func TestDir1NBSpinLockThrashing(t *testing.T) {
	// Section 5.2: two spinners on one lock bounce the block between
	// caches; every test read misses.
	e := must(NewDir1NB(cfg4()))
	d := must(NewDir0B(cfg4()))
	f := newFeeder(e, d)
	f.read(0, 9)
	for i := 0; i < 10; i++ {
		f.read(1, 9)
		f.read(0, 9)
	}
	if miss := e.Stats().Events.ReadMisses(); miss != 20 {
		t.Errorf("Dir1NB misses = %d, want 20", miss)
	}
	if miss := d.Stats().Events.ReadMisses(); miss != 1 {
		t.Errorf("Dir0B misses = %d, want 1 (then hits)", miss)
	}
}

// --- DirnNB (full map) --------------------------------------------------------

func TestDirnNBSequentialInvalidates(t *testing.T) {
	e := must(NewDirnNB(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.read(2, 1)
	f.read(3, 1)
	f.write(3, 1) // must invalidate 0,1,2 with three directed messages
	st := e.Stats()
	wantEvent(t, st, events.WriteHitCleanShared, 1)
	wantOp(t, st, bus.OpInvalidate, 3)
	wantOp(t, st, bus.OpBroadcastInvalidate, 0)
	if st.DirectedInvals != 3 {
		t.Errorf("DirectedInvals = %d, want 3", st.DirectedInvals)
	}
	if st.WastedInvals != 0 {
		t.Errorf("WastedInvals = %d, want 0 (full map is exact)", st.WastedInvals)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirnNBWriteMissCleanInvalidatesAll(t *testing.T) {
	e := must(NewDirnNB(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.write(2, 1) // wm-blk-cln: fetch + 2 invalidates
	st := e.Stats()
	wantEvent(t, st, events.WriteMissClean, 1)
	wantOp(t, st, bus.OpMemRead, 2) // cache 1's read miss + the write-miss fetch
	wantOp(t, st, bus.OpInvalidate, 2)
	if st.InvalFanout.Counts[2] != 1 {
		t.Errorf("fanout = %v", st.InvalFanout.Counts)
	}
}

func TestDirnNBDirtyRequestIsDirected(t *testing.T) {
	e := must(NewDirnNB(cfg4()))
	f := newFeeder(e)
	f.write(0, 1)
	f.read(1, 1) // directed write-back request + write-back
	st := e.Stats()
	wantOp(t, st, bus.OpInvalidate, 1) // the request message
	wantOp(t, st, bus.OpWriteBack, 1)
	wantOp(t, st, bus.OpBroadcastInvalidate, 0)
}

// --- Dir_iNB bounded copies ---------------------------------------------------

func TestDir2NBEvictsOldestCopy(t *testing.T) {
	e := must(NewDiriNB(2, cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.read(2, 1) // pointer overflow: cache 0's copy is invalidated
	st := e.Stats()
	if st.PointerEvictions != 1 {
		t.Errorf("PointerEvictions = %d, want 1", st.PointerEvictions)
	}
	f.read(0, 1) // misses again: its copy was a pointer victim
	wantEvent(t, st, events.ReadMissClean, 3)
	wantEvent(t, st, events.ReadHit, 0)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDiriNBNeverBroadcasts(t *testing.T) {
	e := must(NewDiriNB(2, cfg4()))
	f := newFeeder(e)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		b := uint64(rng.Intn(16))
		if rng.Intn(4) == 0 {
			f.write(rng.Intn(4), b)
		} else {
			f.read(rng.Intn(4), b)
		}
	}
	if e.Stats().BroadcastInvals != 0 || e.Stats().Ops[bus.OpBroadcastInvalidate] != 0 {
		t.Fatal("Dir_iNB broadcast")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- Dir_iB -------------------------------------------------------------------

func TestDir1BDirectedUntilOverflow(t *testing.T) {
	e := must(NewDiriB(1, cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.write(0, 1) // sole: dir check only
	f.read(1, 1)  // flush; 0 and 1 hold... pointer overflow sets bcast
	f.write(1, 1) // must broadcast: holders not all known
	st := e.Stats()
	if st.BroadcastInvals != 1 {
		t.Errorf("BroadcastInvals = %d, want 1", st.BroadcastInvals)
	}
	// After the write the directory tracks exactly cache 1 again.
	f.read(2, 1)  // 1 flushes... wait: block clean. 2 joins → overflow again
	f.write(2, 1) // broadcast again
	if st.BroadcastInvals != 2 {
		t.Errorf("BroadcastInvals = %d, want 2", st.BroadcastInvals)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDir2BSingleSharerDirected(t *testing.T) {
	e := must(NewDiriB(2, cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.write(1, 1) // two pointers suffice: directed invalidate to 0
	st := e.Stats()
	wantOp(t, st, bus.OpInvalidate, 1)
	wantOp(t, st, bus.OpBroadcastInvalidate, 0)
	if st.DirectedInvals != 1 || st.BroadcastInvals != 0 {
		t.Errorf("inval split = %d/%d", st.DirectedInvals, st.BroadcastInvals)
	}
}

// --- CodedSet -----------------------------------------------------------------

func TestCodedSetWastedInvalidates(t *testing.T) {
	e := must(NewCodedSet(Config{Caches: 8}))
	f := newFeeder(e)
	f.read(0, 1) // code: 000
	f.read(3, 1) // 011 → digits 0,1 widen: superset {0,1,2,3}
	f.write(0, 1)
	st := e.Stats()
	// Targets except 0: {1,2,3}; only 3 holds a copy → 2 wasted.
	wantOp(t, st, bus.OpInvalidate, 3)
	if st.WastedInvals != 2 {
		t.Errorf("WastedInvals = %d, want 2", st.WastedInvals)
	}
	if st.BroadcastInvals != 0 {
		t.Error("coded set should not broadcast")
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- Tang ---------------------------------------------------------------------

func TestTangProbesScaleWithCaches(t *testing.T) {
	e := must(NewTang(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1) // one overlapped directory access = 4 probes
	st := e.Stats()
	if st.DirAccesses != 4 {
		t.Errorf("DirAccesses = %d, want 4 (duplicate-directory search)", st.DirAccesses)
	}
	// Protocol behaviour identical to the full map.
	f.write(1, 1)
	wantOp(t, st, bus.OpInvalidate, 1)
}

// --- WTI ----------------------------------------------------------------------

func TestWTIAllWritesGoThrough(t *testing.T) {
	e := must(NewWTI(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.write(0, 1)
	f.write(0, 1)
	f.write(0, 1)
	st := e.Stats()
	wantOp(t, st, bus.OpWriteThrough, 3)
	wantOp(t, st, bus.OpWriteBack, 0)
	wantOp(t, st, bus.OpDirCheck, 0)
}

func TestWTIMemoryAlwaysSupplies(t *testing.T) {
	e := must(NewWTI(cfg4()))
	f := newFeeder(e)
	f.write(0, 1) // first
	f.read(1, 1)  // classified rm-blk-drty but memory supplies
	st := e.Stats()
	wantEvent(t, st, events.ReadMissDirty, 1)
	wantOp(t, st, bus.OpMemRead, 1)
	wantOp(t, st, bus.OpWriteBack, 0)
}

func TestWTIInvalidatesOnWrite(t *testing.T) {
	e := must(NewWTI(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.write(0, 1) // snooping invalidates cache 1's copy for free
	st := e.Stats()
	wantOp(t, st, bus.OpWriteThrough, 1)
	wantOp(t, st, bus.OpInvalidate, 0)
	f.read(1, 1)
	if st.Events.ReadMisses() != 2 {
		t.Errorf("read misses = %d, want 2 (copy was invalidated)", st.Events.ReadMisses())
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The paper's key structural observation: WTI and Dir0B have identical
// event frequencies because they share a state-change model.
func TestWTIAndDir0BEventFrequenciesIdentical(t *testing.T) {
	wti := must(NewWTI(cfg4()))
	dir0b := must(NewDir0B(cfg4()))
	f := newFeeder(wti, dir0b)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		c := rng.Intn(4)
		b := uint64(rng.Intn(64))
		switch rng.Intn(4) {
		case 0:
			f.write(c, b)
		case 1:
			f.access(c, trace.Instr, b+1000)
		default:
			f.read(c, b)
		}
	}
	if wti.Stats().Events != dir0b.Stats().Events {
		t.Fatalf("event counts differ:\nWTI   %v\nDir0B %v",
			wti.Stats().Events, dir0b.Stats().Events)
	}
}

// --- Dragon -------------------------------------------------------------------

func TestDragonNeverInvalidates(t *testing.T) {
	e := must(NewDragon(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.write(0, 1) // update, not invalidate
	f.read(1, 1)  // still a hit
	st := e.Stats()
	wantEvent(t, st, events.WriteHitUpdate, 1)
	wantOp(t, st, bus.OpWriteUpdate, 1)
	wantEvent(t, st, events.ReadHit, 1)
	wantOp(t, st, bus.OpInvalidate, 0)
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDragonLocalWriteFree(t *testing.T) {
	e := must(NewDragon(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.write(0, 1) // sole copy: no bus traffic
	st := e.Stats()
	wantEvent(t, st, events.WriteHitLocal, 1)
	if st.Ops.Total() != 0 {
		t.Errorf("local write emitted ops: %v", st.Ops)
	}
}

func TestDragonCacheSuppliesStaleMemory(t *testing.T) {
	e := must(NewDragon(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.write(0, 1) // memory now stale
	f.read(1, 1)  // supplied by cache 0
	st := e.Stats()
	wantEvent(t, st, events.ReadMissDirty, 1)
	wantOp(t, st, bus.OpCacheRead, 1)
	wantOp(t, st, bus.OpMemRead, 0)
}

func TestDragonWriteMissUpdatesOthers(t *testing.T) {
	e := must(NewDragon(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.write(1, 1) // miss: fetch from memory, then distribute the word
	st := e.Stats()
	wantEvent(t, st, events.WriteMissClean, 1)
	wantOp(t, st, bus.OpMemRead, 1)
	wantOp(t, st, bus.OpWriteUpdate, 1)
	f.read(0, 1) // cache 0 still current
	wantEvent(t, st, events.ReadHit, 1)
}

func TestDragonInfiniteCacheMissesOnlyOnce(t *testing.T) {
	e := must(NewDragon(cfg4()))
	f := newFeeder(e)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		c := rng.Intn(4)
		b := uint64(rng.Intn(32))
		if rng.Intn(5) == 0 {
			f.write(c, b)
		} else {
			f.read(c, b)
		}
	}
	st := e.Stats()
	// Each (cache, block) pair can miss at most once: ≤ 4×32 non-first
	// misses plus 32 first refs.
	misses := st.Events.ReadMisses() + st.Events.WriteMisses()
	if misses > 4*32 {
		t.Errorf("Dragon misses = %d, want ≤ 128", misses)
	}
}

// --- Berkeley -----------------------------------------------------------------

func TestBerkeleyMatchesDir0BOpsWithFreeDirectory(t *testing.T) {
	brk := must(NewBerkeley(cfg4()))
	d0b := must(NewDir0B(cfg4()))
	f := newFeeder(brk, d0b)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		c := rng.Intn(4)
		b := uint64(rng.Intn(32))
		if rng.Intn(3) == 0 {
			f.write(c, b)
		} else {
			f.read(c, b)
		}
	}
	if brk.Stats().Ops != d0b.Stats().Ops {
		t.Fatal("Berkeley op counts must equal Dir0B's")
	}
	adj, ok := Engine(brk).(ModelAdjuster)
	if !ok {
		t.Fatal("Berkeley must implement ModelAdjuster")
	}
	m := adj.AdjustModel(bus.Pipelined())
	if m.Cost[bus.OpDirCheck] != 0 {
		t.Fatal("Berkeley model must price directory checks at zero")
	}
	berkCycles := m.Cycles(brk.Stats().Ops)
	dirCycles := bus.Pipelined().Cycles(d0b.Stats().Ops)
	if berkCycles >= dirCycles {
		t.Errorf("Berkeley cycles %v should be below Dir0B %v", berkCycles, dirCycles)
	}
	if brk.Name() != "Berkeley" {
		t.Errorf("Name = %q", brk.Name())
	}
}

// --- Transactions and first refs ----------------------------------------------

func TestFirstReferencesAreFree(t *testing.T) {
	for _, mk := range []func() (Engine, error){
		func() (Engine, error) { return NewDir1NB(cfg4()) },
		func() (Engine, error) { return NewDir0B(cfg4()) },
		func() (Engine, error) { return NewDirnNB(cfg4()) },
		func() (Engine, error) { return NewWTI(cfg4()) },
		func() (Engine, error) { return NewDragon(cfg4()) },
	} {
		e := must(mk())
		f := newFeeder(e)
		for b := uint64(0); b < 50; b++ {
			if b%2 == 0 {
				f.read(int(b%4), b)
			} else {
				f.write(int(b%4), b)
			}
		}
		st := e.Stats()
		if st.Ops.Total() != 0 {
			t.Errorf("%s: first references emitted ops %v", e.Name(), st.Ops)
		}
		if st.Transactions != 0 {
			t.Errorf("%s: Transactions = %d", e.Name(), st.Transactions)
		}
		wantEvent(t, st, events.ReadMissFirst, 25)
		wantEvent(t, st, events.WriteMissFirst, 25)
	}
}

func TestTransactionsCountBusUses(t *testing.T) {
	e := must(NewDir0B(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)  // free (first)
	f.read(1, 1)  // 1 txn (mem read)
	f.write(1, 1) // 1 txn (dir check + broadcast)
	f.write(1, 1) // free (dirty hit)
	st := e.Stats()
	if st.Transactions != 2 {
		t.Errorf("Transactions = %d, want 2", st.Transactions)
	}
}

func TestCyclesHelpers(t *testing.T) {
	e := must(NewDir0B(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1) // mem read: 5 cycles pipelined
	st := e.Stats()
	m := bus.Pipelined()
	if got := st.CyclesPerRef(m); got != 2.5 {
		t.Errorf("CyclesPerRef = %v, want 2.5", got)
	}
	if got := st.CyclesPerTransaction(m); got != 5 {
		t.Errorf("CyclesPerTransaction = %v, want 5", got)
	}
	// q=1 adds one cycle per transaction: (5+1)/2 refs.
	if got := st.CyclesPerRefWithOverhead(m, 1); got != 3 {
		t.Errorf("CyclesPerRefWithOverhead = %v, want 3", got)
	}
	var zero Stats
	if zero.CyclesPerRef(m) != 0 || zero.CyclesPerTransaction(m) != 0 || zero.CyclesPerRefWithOverhead(m, 1) != 0 {
		t.Error("zero stats should price to zero")
	}
}

// --- Instr handling -------------------------------------------------------------

func TestInstructionsCauseNoTraffic(t *testing.T) {
	engines := allEngines(t, cfg4())
	f := newFeeder(engines...)
	for i := 0; i < 100; i++ {
		f.access(i%4, trace.Instr, uint64(i))
	}
	for _, e := range engines {
		st := e.Stats()
		if st.Ops.Total() != 0 {
			t.Errorf("%s: instructions emitted ops", e.Name())
		}
		wantEvent(t, st, events.Instr, 100)
		if st.Refs != 100 {
			t.Errorf("%s: Refs = %d", e.Name(), st.Refs)
		}
	}
}

func TestAccessPanicsOnBadCache(t *testing.T) {
	e := must(NewDir0B(cfg4()))
	for _, c := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Access(cache=%d) did not panic", c)
				}
			}()
			e.Access(c, trace.Read, 1, true)
		}()
	}
}

// allEngines builds one of every scheme for cross-cutting tests.
func allEngines(t *testing.T, cfg Config) []Engine {
	t.Helper()
	var out []Engine
	for _, name := range []string{"dir1nb", "dir2nb", "dirnnb", "dir0b", "dir1b", "dir2b", "codedset", "tang", "wti", "dragon", "berkeley"} {
		e, err := NewByName(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out = append(out, e)
	}
	return out
}

func TestNewByName(t *testing.T) {
	cfg := cfg4()
	cases := map[string]string{
		"dir1nb":    "Dir1NB",
		"DIR4NB":    "Dir4NB",
		"dirnnb":    "DirnNB",
		"dir0b":     "Dir0B",
		"dir3b":     "Dir3B",
		"codedset":  "CodedSet",
		"tang":      "Tang",
		"wti":       "WTI",
		"dragon":    "Dragon",
		"berkeley":  "Berkeley",
		"mesi":      "MESI",
		"writeonce": "WriteOnce",
		"firefly":   "Firefly",
	}
	for in, want := range cases {
		e, err := NewByName(in, cfg)
		if err != nil {
			t.Errorf("NewByName(%q): %v", in, err)
			continue
		}
		if e.Name() != want {
			t.Errorf("NewByName(%q).Name() = %q, want %q", in, e.Name(), want)
		}
		if e.Caches() != 4 {
			t.Errorf("%s Caches = %d", want, e.Caches())
		}
	}
	for _, bad := range []string{"", "mosei", "dir0nb", "dirxb", "dir-1b"} {
		if _, err := NewByName(bad, cfg); err == nil {
			t.Errorf("NewByName(%q) accepted", bad)
		}
	}
}

func TestSection3Engines(t *testing.T) {
	engs, err := Section3Engines(cfg4())
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Dir1NB", "WTI", "Dir0B", "Dragon"}
	if len(engs) != len(want) {
		t.Fatalf("got %d engines", len(engs))
	}
	for i, e := range engs {
		if e.Name() != want[i] {
			t.Errorf("engine %d = %s, want %s", i, e.Name(), want[i])
		}
	}
}

func TestPerCacheTallies(t *testing.T) {
	e := must(NewDir0B(cfg4()))
	f := newFeeder(e)
	f.read(0, 1)  // first ref: miss for cache 0
	f.read(1, 1)  // miss for cache 1
	f.read(0, 1)  // hit for cache 0
	f.write(2, 1) // miss (write) for cache 2
	f.access(3, trace.Instr, 99)
	st := e.Stats()
	if len(st.PerCache) != 4 {
		t.Fatalf("PerCache len = %d", len(st.PerCache))
	}
	want := []CacheTally{
		{Hits: 1, Misses: 1},
		{Misses: 1},
		{Misses: 1, Writes: 1},
		{},
	}
	for i, w := range want {
		if st.PerCache[i] != w {
			t.Errorf("cache %d tally = %+v, want %+v", i, st.PerCache[i], w)
		}
	}
	// Aggregate consistency: per-cache sums match the event totals.
	var hits, misses uint64
	for _, ct := range st.PerCache {
		hits += ct.Hits
		misses += ct.Misses
	}
	ev := st.Events
	if hits != ev[events.ReadHit]+ev.WriteHits() {
		t.Errorf("per-cache hits %d != event hits", hits)
	}
	if misses != ev.ReadMisses()+ev.WriteMisses()+ev[events.ReadMissFirst]+ev[events.WriteMissFirst] {
		t.Errorf("per-cache misses %d != event misses", misses)
	}
}

func TestMissImbalance(t *testing.T) {
	var st Stats
	if st.MissImbalance() != 0 {
		t.Error("empty stats should report 0")
	}
	st.PerCache = []CacheTally{{Misses: 30}, {Misses: 10}, {Misses: 0}, {Misses: 0}}
	// max 30, mean 10 → 3.
	if got := st.MissImbalance(); got != 3 {
		t.Errorf("MissImbalance = %v, want 3", got)
	}
}
