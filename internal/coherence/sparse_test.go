package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dirsim/internal/bus"
	"dirsim/internal/events"
)

func sparseCfg(entries int) Config {
	return Config{Caches: 4, DirEntries: entries}
}

func TestSparseConfigValidation(t *testing.T) {
	if err := (Config{Caches: 4, DirEntries: -1}).Validate(); err == nil {
		t.Fatal("negative DirEntries accepted")
	}
	if _, err := NewDirnNB(sparseCfg(8)); err != nil {
		t.Fatal(err)
	}
}

func TestSparseEntryEvictionInvalidatesCopies(t *testing.T) {
	e := must(NewDirnNB(sparseCfg(2)))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1) // block 1 shared by two caches
	f.read(0, 2)
	f.read(0, 3) // third block: directory entry for block 1 evicted
	st := e.Stats()
	if st.DirEntryEvictions != 1 {
		t.Fatalf("DirEntryEvictions = %d, want 1", st.DirEntryEvictions)
	}
	// Both copies of block 1 were invalidated with directed messages.
	if st.Ops[bus.OpInvalidate] != 2 {
		t.Fatalf("invalidates = %d, want 2", st.Ops[bus.OpInvalidate])
	}
	// Re-reading block 1 misses as uncached.
	f.read(0, 1)
	if st.Events[events.ReadMissUncached] != 1 {
		t.Fatalf("re-read classified as %v", st.Events)
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseEvictionWritesBackDirtyBlock(t *testing.T) {
	e := must(NewDirnNB(sparseCfg(2)))
	f := newFeeder(e)
	f.write(0, 1) // dirty
	f.read(0, 2)
	f.read(0, 3) // evicts block 1's entry → write-back + invalidate
	st := e.Stats()
	if st.Ops[bus.OpWriteBack] != 1 {
		t.Fatalf("write-backs = %d, want 1", st.Ops[bus.OpWriteBack])
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSparseHitsKeepEntriesWarm(t *testing.T) {
	e := must(NewDirnNB(sparseCfg(2)))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(0, 2)
	f.read(0, 1) // hit: block 1 becomes most recent
	f.read(0, 3) // evicts block 2, not block 1
	f.read(0, 1) // still a hit
	st := e.Stats()
	if st.Events[events.ReadHit] != 2 {
		t.Fatalf("read hits = %d, want 2", st.Events[events.ReadHit])
	}
	f.read(0, 2) // block 2 was displaced: uncached miss
	if st.Events[events.ReadMissUncached] != 1 {
		t.Fatalf("events = %v", st.Events)
	}
}

func TestSparseDir0BBroadcastsOnEviction(t *testing.T) {
	e := must(NewDir0B(sparseCfg(2)))
	f := newFeeder(e)
	f.read(0, 1)
	f.read(1, 1)
	f.read(0, 2)
	f.read(0, 3)
	st := e.Stats()
	if st.DirEntryEvictions != 1 {
		t.Fatalf("DirEntryEvictions = %d", st.DirEntryEvictions)
	}
	// The two-bit organisation cannot direct, so the eviction broadcast.
	if st.Ops[bus.OpBroadcastInvalidate] != 1 {
		t.Fatalf("broadcasts = %d, want 1", st.Ops[bus.OpBroadcastInvalidate])
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Shrinking the sparse directory only adds traffic, never removes it; an
// ample directory behaves exactly like the memory-resident one.
func TestSparseCapacitySweep(t *testing.T) {
	run := func(entries int) float64 {
		e := must(NewDirnNB(Config{Caches: 4, DirEntries: entries}))
		f := newFeeder(e)
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 40000; i++ {
			c := rng.Intn(4)
			b := uint64(rng.Intn(64))
			if rng.Intn(4) == 0 {
				f.write(c, b)
			} else {
				f.read(c, b)
			}
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return e.Stats().CyclesPerRef(bus.Pipelined())
	}
	tiny, small, ample, unbounded := run(8), run(32), run(64), run(0)
	if !(tiny > small && small > ample*0.999) {
		t.Errorf("cycles not monotone in capacity: %v, %v, %v", tiny, small, ample)
	}
	if ample != unbounded {
		t.Errorf("64-entry directory over 64 blocks should equal unbounded: %v vs %v", ample, unbounded)
	}
}

// Property: invariants hold under random streams for every directory
// organisation with a tiny sparse directory.
func TestQuickSparseInvariants(t *testing.T) {
	f := func(raw []uint32) bool {
		for _, name := range []string{"dirnnb", "dir0b", "dir2b", "codedset", "dir1nb"} {
			e, err := NewByName(name, Config{Caches: 4, DirEntries: 4})
			if err != nil {
				return false
			}
			replay([]Engine{e}, raw, 4, 24)
			if err := e.CheckInvariants(); err != nil {
				t.Logf("%v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
