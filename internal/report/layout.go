// Package report renders the paper's tables and figures as text.
//
// Each Table<n>/Figure<n> function corresponds to one artifact of the
// paper's evaluation section; cmd/paper strings them together and
// EXPERIMENTS.md records how the regenerated values compare with the
// published ones. Figures are rendered as horizontal bar charts, which is
// what the originals are.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table accumulates rows of cells and renders them with aligned columns.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which uses %.4f.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// Render lays the table out with every column padded to its widest cell.
// The first column is left-aligned; the rest are right-aligned (they hold
// numbers).
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); w > width[i] {
				width[i] = w
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			var cell string
			if i < len(row) {
				cell = row[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i], cell)
			} else {
				fmt.Fprintf(&b, "  %*s", width[i], cell)
			}
		}
		// Trim right-edge padding.
		s := b.String()
		for strings.HasSuffix(s, " ") {
			s = s[:len(s)-1]
		}
		b.Reset()
		b.WriteString(s)
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Bar renders one horizontal bar of the given value scaled so that max
// occupies width characters.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if value > 0 && n == 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// BarChart renders labelled horizontal bars with their numeric values.
type BarChart struct {
	Title string
	Unit  string
	rows  []barRow
	width int
}

type barRow struct {
	label string
	value float64
}

// NewBarChart returns a bar chart; width is the maximum bar width in
// characters (default 40 if zero).
func NewBarChart(title, unit string, width int) *BarChart {
	if width <= 0 {
		width = 40
	}
	return &BarChart{Title: title, Unit: unit, width: width}
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.rows = append(c.rows, barRow{label, value})
}

// Render lays out the chart.
func (c *BarChart) Render() string {
	var max float64
	labelW := 0
	for _, r := range c.rows {
		if r.value > max {
			max = r.value
		}
		if w := utf8.RuneCountInString(r.label); w > labelW {
			labelW = w
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	for _, r := range c.rows {
		fmt.Fprintf(&b, "%-*s  %8.4f %s |%s\n", labelW, r.label, r.value, c.Unit, Bar(r.value, max, c.width))
	}
	return b.String()
}

// pct formats a fraction as a Table 4 style percentage.
func pct(f float64) string { return fmt.Sprintf("%.2f", f*100) }

// RenderMarkdown lays the table out as a GitHub-flavoured Markdown table
// (first column left-aligned, the rest right-aligned), for pasting into
// issues and docs.
func (t *Table) RenderMarkdown() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return ""
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(row []string) {
		b.WriteByte('|')
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(cell, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	b.WriteByte('|')
	for i := 0; i < cols; i++ {
		if i == 0 {
			b.WriteString(":--|")
		} else {
			b.WriteString("--:|")
		}
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
