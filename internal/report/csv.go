package report

import (
	"encoding/csv"
	"fmt"
	"io"

	"dirsim/internal/bus"
	"dirsim/internal/events"
	"dirsim/internal/sim"
)

// WriteCSV emits one row per scheme with the headline metrics and the full
// event-frequency and operation-cycle breakdowns, for downstream plotting.
// Columns are stable: scheme, refs, transactions, cycles/ref under every
// supplied model, cycles/transaction under the first model, the Table 4
// event frequencies, and per-operation cycles per reference under the
// first model.
func WriteCSV(w io.Writer, results []sim.Result, models ...bus.CostModel) error {
	if len(models) == 0 {
		models = []bus.CostModel{bus.Pipelined(), bus.NonPipelined()}
	}
	cw := csv.NewWriter(w)
	header := []string{"scheme", "refs", "transactions"}
	for _, m := range models {
		header = append(header, "cycles_per_ref_"+sanitize(m.Name))
	}
	header = append(header, "cycles_per_txn_"+sanitize(models[0].Name))
	for _, t := range events.Types() {
		header = append(header, "freq_"+sanitize(t.String()))
	}
	for _, op := range bus.Ops() {
		header = append(header, "cycles_"+sanitize(op.String()))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range results {
		row := []string{
			r.Scheme,
			fmt.Sprintf("%d", r.Stats.Refs),
			fmt.Sprintf("%d", r.Stats.Transactions),
		}
		for _, m := range models {
			row = append(row, fmt.Sprintf("%.6f", r.CyclesPerRef(m)))
		}
		row = append(row, fmt.Sprintf("%.6f", r.CyclesPerTransaction(models[0])))
		for _, t := range events.Types() {
			row = append(row, fmt.Sprintf("%.6f", r.EventFrequency(t)))
		}
		by := r.CyclesByOp(models[0])
		for _, op := range bus.Ops() {
			v := 0.0
			if r.Stats.Refs > 0 {
				v = by[op] / float64(r.Stats.Refs)
			}
			row = append(row, fmt.Sprintf("%.6f", v))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// sanitize turns labels like "rm-blk-cln" or "mem access" into CSV-header
// friendly identifiers.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
