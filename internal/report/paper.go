package report

import (
	"fmt"
	"strings"

	"dirsim/internal/bus"
	"dirsim/internal/events"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
)

// Table1 renders the fundamental bus operation timings (paper Table 1).
func Table1(t bus.Timing) string {
	tb := NewTable("Table 1: Timing for fundamental bus operations", "Operation", "Cycles")
	tb.AddRowf("Transfer address", t.TransferAddress)
	tb.AddRowf("Transfer 1 data word", t.TransferDataWord)
	tb.AddRowf("Invalidate", t.Invalidate)
	tb.AddRowf("Wait for Directory", t.WaitDirectory)
	tb.AddRowf("Wait for Memory", t.WaitMemory)
	tb.AddRowf("Wait for Cache", t.WaitCache)
	tb.AddRowf("Words per block", t.WordsPerBlock)
	return tb.Render()
}

// Table2 renders the per-operation bus cycle costs under the pipelined and
// non-pipelined models derived from t (paper Table 2).
func Table2(t bus.Timing) string {
	pip, np := t.Pipelined(), t.NonPipelined()
	tb := NewTable("Table 2: Summary of bus cycle costs", "Access type", "Pipelined Bus", "Non-Pipelined Bus")
	for _, op := range bus.Ops() {
		if op == bus.OpDirCheckOverlapped {
			continue // zero by construction in both models
		}
		tb.AddRow(op.String(), fmt.Sprintf("%.0f", pip.Cost[op]), fmt.Sprintf("%.0f", np.Cost[op]))
	}
	return tb.Render()
}

// Table3 renders trace characteristics (paper Table 3). Counts print in
// thousands, as the paper does.
func Table3(names []string, stats []trace.Stats) string {
	tb := NewTable("Table 3: Summary of trace characteristics (thousands)",
		"Trace", "Refs", "Instr", "DRd", "DWrt", "User", "Sys")
	k := func(v uint64) string { return fmt.Sprintf("%d", (v+500)/1000) }
	for i, st := range stats {
		tb.AddRow(names[i], k(st.Refs), k(st.Instr), k(st.DataRd), k(st.DataWr), k(st.User), k(st.Sys))
	}
	return tb.Render()
}

// table4Rows defines the Table 4 layout: label plus a function extracting
// the value (as a fraction of references) from a result.
var table4Rows = []struct {
	label string
	value func(r sim.Result) float64
}{
	{"instr", func(r sim.Result) float64 { return r.EventFrequency(events.Instr) }},
	{"read", func(r sim.Result) float64 {
		return float64(r.Stats.Events.Reads()) / float64(r.Stats.Refs)
	}},
	{"  rd-hit", func(r sim.Result) float64 { return r.EventFrequency(events.ReadHit) }},
	{"  rd-miss(rm)", func(r sim.Result) float64 {
		return float64(r.Stats.Events.ReadMisses()) / float64(r.Stats.Refs)
	}},
	{"    rm-blk-cln", func(r sim.Result) float64 { return r.EventFrequency(events.ReadMissClean) }},
	{"    rm-blk-drty", func(r sim.Result) float64 { return r.EventFrequency(events.ReadMissDirty) }},
	{"    rm-uncached", func(r sim.Result) float64 { return r.EventFrequency(events.ReadMissUncached) }},
	{"  rm-first-ref", func(r sim.Result) float64 { return r.EventFrequency(events.ReadMissFirst) }},
	{"write", func(r sim.Result) float64 {
		return float64(r.Stats.Events.Writes()) / float64(r.Stats.Refs)
	}},
	{"  wrt-hit(wh)", func(r sim.Result) float64 {
		return float64(r.Stats.Events.WriteHits()) / float64(r.Stats.Refs)
	}},
	{"    wh-blk-cln", func(r sim.Result) float64 {
		return r.EventFrequency(events.WriteHitCleanSole) + r.EventFrequency(events.WriteHitCleanShared)
	}},
	{"    wh-blk-drty", func(r sim.Result) float64 { return r.EventFrequency(events.WriteHitDirty) }},
	{"    wh-distrib", func(r sim.Result) float64 { return r.EventFrequency(events.WriteHitUpdate) }},
	{"    wh-local", func(r sim.Result) float64 { return r.EventFrequency(events.WriteHitLocal) }},
	{"  wrt-miss(wm)", func(r sim.Result) float64 {
		return float64(r.Stats.Events.WriteMisses()) / float64(r.Stats.Refs)
	}},
	{"    wm-blk-cln", func(r sim.Result) float64 { return r.EventFrequency(events.WriteMissClean) }},
	{"    wm-blk-drty", func(r sim.Result) float64 { return r.EventFrequency(events.WriteMissDirty) }},
	{"    wm-uncached", func(r sim.Result) float64 { return r.EventFrequency(events.WriteMissUncached) }},
	{"  wm-first-ref", func(r sim.Result) float64 { return r.EventFrequency(events.WriteMissFirst) }},
}

// Table4 renders event frequencies as percentages of all references, one
// column per scheme (paper Table 4). Pass results combined across traces.
func Table4(results []sim.Result) string {
	headers := append([]string{"Event Type"}, schemes(results)...)
	tb := NewTable("Table 4: Event frequencies (% of all references)", headers...)
	for _, row := range table4Rows {
		cells := []string{row.label}
		for _, r := range results {
			v := row.value(r)
			if v <= 0 && strings.HasPrefix(strings.TrimSpace(row.label), "w") {
				cells = append(cells, "-")
			} else {
				cells = append(cells, pct(v))
			}
		}
		tb.AddRow(cells...)
	}
	return tb.Render()
}

func schemes(results []sim.Result) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Scheme
	}
	return out
}

// Figure1 renders the histogram of the number of caches in which a block
// must be invalidated on a write to a previously-clean block (paper
// Figure 1), as percentages.
func Figure1(r sim.Result) string {
	h := &r.Stats.InvalFanout
	c := NewBarChart(
		fmt.Sprintf("Figure 1: caches invalidated on a write to a previously-clean block (%s)", r.Scheme),
		"%", 40)
	max := h.Max()
	if max < 4 {
		max = 4
	}
	for v := 0; v <= max; v++ {
		c.Add(fmt.Sprintf("%d", v), h.Fraction(v)*100)
	}
	s := c.Render()
	s += fmt.Sprintf("writes to previously-clean blocks needing ≤1 invalidation: %.1f%%\n",
		h.CumulativeFraction(1)*100)
	return s
}

// Figure2 renders the range of bus cycles per reference per scheme, the low
// end under the pipelined bus and the high end under the non-pipelined bus
// (paper Figure 2).
func Figure2(results []sim.Result, pip, np bus.CostModel) string {
	tb := NewTable("Figure 2: bus cycles per memory reference (pipelined … non-pipelined)",
		"Scheme", "Pipelined", "Non-pipelined")
	for _, r := range results {
		tb.AddRow(r.Scheme,
			fmt.Sprintf("%.4f", r.CyclesPerRef(pip)),
			fmt.Sprintf("%.4f", r.CyclesPerRef(np)))
	}
	c := NewBarChart("", "cycles/ref (non-pipelined)", 40)
	for _, r := range results {
		c.Add(r.Scheme, r.CyclesPerRef(np))
	}
	return tb.Render() + c.Render()
}

// Figure3 renders per-trace bus cycle ranges (paper Figure 3). results is
// indexed [trace][scheme].
func Figure3(traceNames []string, results [][]sim.Result, pip, np bus.CostModel) string {
	var b strings.Builder
	b.WriteString("Figure 3: bus cycles per memory reference by trace\n")
	for ti, name := range traceNames {
		tb := NewTable(name, "Scheme", "Pipelined", "Non-pipelined")
		for _, r := range results[ti] {
			tb.AddRow(r.Scheme,
				fmt.Sprintf("%.4f", r.CyclesPerRef(pip)),
				fmt.Sprintf("%.4f", r.CyclesPerRef(np)))
		}
		b.WriteString(tb.Render())
	}
	return b.String()
}

// table5Ops are the operation classes Table 5 itemises, in the paper's
// order. Write-through and write-update share a row ("wt or wup").
var table5Ops = [][]bus.Op{
	{bus.OpMemRead},
	{bus.OpCacheRead},
	{bus.OpWriteBack},
	{bus.OpInvalidate, bus.OpBroadcastInvalidate},
	{bus.OpWriteThrough, bus.OpWriteUpdate},
	{bus.OpDirCheck},
}

var table5Labels = []string{
	"mem access", "cache access", "write-back", "invalidate", "wt or wup", "dir access",
}

// Table5 renders the per-operation breakdown of bus cycles per reference
// under m (paper Table 5, which uses the pipelined bus).
func Table5(results []sim.Result, m bus.CostModel) string {
	headers := append([]string{"Access type"}, schemes(results)...)
	tb := NewTable(fmt.Sprintf("Table 5: breakdown of bus cycles per reference (%s bus)", m.Name), headers...)
	totals := make([]float64, len(results))
	for gi, group := range table5Ops {
		cells := []string{table5Labels[gi]}
		for ri, r := range results {
			by := r.CyclesByOp(m)
			var v float64
			for _, op := range group {
				v += by[op]
			}
			v /= float64(r.Stats.Refs)
			totals[ri] += v
			if v <= 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmt.Sprintf("%.4f", v))
			}
		}
		tb.AddRow(cells...)
	}
	cells := []string{"cumulative"}
	for _, t := range totals {
		cells = append(cells, fmt.Sprintf("%.4f", t))
	}
	tb.AddRow(cells...)
	return tb.Render()
}

// Figure4 renders each scheme's Table 5 breakdown as fractions of its own
// total (paper Figure 4).
func Figure4(results []sim.Result, m bus.CostModel) string {
	var b strings.Builder
	b.WriteString("Figure 4: bus cycle breakdown as a fraction of each scheme's total\n")
	for _, r := range results {
		by := r.CyclesByOp(m)
		var total float64
		for _, v := range by {
			total += v
		}
		c := NewBarChart(r.Scheme, "", 30)
		for gi, group := range table5Ops {
			var v float64
			for _, op := range group {
				v += by[op]
			}
			if v <= 0 {
				continue
			}
			c.Add(table5Labels[gi], v/total)
		}
		b.WriteString(c.Render())
	}
	return b.String()
}

// Figure5 renders average bus cycles per bus transaction (paper Figure 5).
func Figure5(results []sim.Result, m bus.CostModel) string {
	c := NewBarChart("Figure 5: average bus cycles per bus transaction", "cycles/txn", 40)
	for _, r := range results {
		c.Add(r.Scheme, r.CyclesPerTransaction(m))
	}
	return c.Render()
}

// Section51 renders the fixed-overhead sensitivity study: cycles per
// reference for each scheme as q extra cycles are charged per bus
// transaction, and the relative gap between the last two schemes given
// (the paper compares Dir0B against Dragon: with q=1 the gap shrinks from
// ~46% to ~12%).
func Section51(results []sim.Result, m bus.CostModel, qs []float64) string {
	headers := []string{"q"}
	headers = append(headers, schemes(results)...)
	if len(results) >= 2 {
		headers = append(headers, "gap%")
	}
	tb := NewTable("Section 5.1: effect of q fixed bus cycles per transaction", headers...)
	for _, q := range qs {
		cells := []string{fmt.Sprintf("%.0f", q)}
		var vals []float64
		for _, r := range results {
			v := r.CyclesPerRefWithOverhead(m, q)
			vals = append(vals, v)
			cells = append(cells, fmt.Sprintf("%.4f", v))
		}
		if len(vals) >= 2 {
			a, b := vals[len(vals)-2], vals[len(vals)-1]
			if b > 0 {
				cells = append(cells, fmt.Sprintf("%.0f", (a/b-1)*100))
			}
		}
		tb.AddRow(cells...)
	}
	return tb.Render()
}

// Section52 renders the spin-lock impact study: cycles per reference with
// the full trace versus the trace with lock-test reads removed (paper
// Section 5.2).
func Section52(with, without []sim.Result, m bus.CostModel) string {
	tb := NewTable("Section 5.2: impact of spin-lock reads (bus cycles per reference, pipelined)",
		"Scheme", "with locks", "locks excluded", "ratio")
	for i, r := range with {
		a := r.CyclesPerRef(m)
		b := without[i].CyclesPerRef(m)
		ratio := 0.0
		if b > 0 {
			ratio = a / b
		}
		tb.AddRow(r.Scheme, fmt.Sprintf("%.4f", a), fmt.Sprintf("%.4f", b), fmt.Sprintf("%.2f", ratio))
	}
	return tb.Render()
}

// Table4Legend renders the legend block printed beneath the paper's
// Table 4.
func Table4Legend() string {
	tb := NewTable("LEGEND", "Event", "Meaning")
	for _, t := range events.Types() {
		tb.AddRow(t.String(), t.Legend())
	}
	return tb.Render()
}
