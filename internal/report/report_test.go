package report

import (
	"context"
	"strings"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("title", "A", "BB")
	tb.AddRow("x", "1")
	tb.AddRow("longer", "22", "extra")
	out := tb.Render()
	if !strings.HasPrefix(out, "title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "A") || !strings.Contains(lines[1], "BB") {
		t.Errorf("header wrong: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "--") {
		t.Errorf("rule missing: %q", lines[2])
	}
	// Right-aligned numeric column: "1" under "BB" ends at same column as "22".
	if strings.HasSuffix(lines[3], " ") {
		t.Errorf("trailing whitespace: %q", lines[3])
	}
	if !strings.Contains(lines[4], "extra") {
		t.Errorf("extra cell dropped: %q", lines[4])
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "x", "y")
	tb.AddRowf("a", 0.12345, 7)
	out := tb.Render()
	if !strings.Contains(out, "0.1235") && !strings.Contains(out, "0.1234") {
		t.Errorf("float not formatted: %s", out)
	}
	if !strings.Contains(out, "7") {
		t.Errorf("int missing: %s", out)
	}
}

func TestBar(t *testing.T) {
	if Bar(0, 10, 10) != "" {
		t.Error("zero value should render empty bar")
	}
	if got := Bar(10, 10, 10); len([]rune(got)) != 10 {
		t.Errorf("full bar = %q", got)
	}
	if got := Bar(0.01, 10, 10); len([]rune(got)) != 1 {
		t.Errorf("tiny nonzero value should get one glyph, got %q", got)
	}
	if Bar(20, 10, 10) != Bar(10, 10, 10) {
		t.Error("overflow not clamped")
	}
	if Bar(5, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Error("degenerate inputs should render empty")
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("chart", "u", 10)
	c.Add("one", 1)
	c.Add("two", 2)
	out := c.Render()
	if !strings.HasPrefix(out, "chart\n") {
		t.Errorf("missing title: %s", out)
	}
	if !strings.Contains(out, "u |") {
		t.Errorf("unit missing: %s", out)
	}
	if strings.Count(out, "█") < 3 {
		t.Errorf("bars missing: %s", out)
	}
}

func TestTable1And2ContainPaperValues(t *testing.T) {
	t1 := Table1(bus.DefaultTiming())
	for _, want := range []string{"Transfer address", "Wait for Memory", "Invalidate"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2(bus.DefaultTiming())
	for _, want := range []string{"mem access", "5", "7", "write-back"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q:\n%s", want, t2)
		}
	}
}

func TestTable3(t *testing.T) {
	st := trace.Stats{Refs: 3142000, Instr: 1624000, DataRd: 1257000, DataWr: 261000, User: 2817000, Sys: 325000}
	out := Table3([]string{"POPS"}, []trace.Stats{st})
	for _, want := range []string{"POPS", "3142", "1624", "1257", "261", "2817", "325"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
}

// smallResults builds real results over a tiny trace for rendering tests.
func smallResults(t *testing.T) []sim.Result {
	t.Helper()
	tr := trace.Slice{
		{CPU: 0, Kind: trace.Read, Addr: 0x10},
		{CPU: 1, Kind: trace.Read, Addr: 0x10},
		{CPU: 0, Kind: trace.Write, Addr: 0x10},
		{CPU: 1, Kind: trace.Read, Addr: 0x10},
		{CPU: 0, Kind: trace.Instr, Addr: 0x999},
	}
	d0, err := coherence.NewDir0B(coherence.Config{Caches: 2})
	if err != nil {
		t.Fatal(err)
	}
	drg, err := coherence.NewDragon(coherence.Config{Caches: 2})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sim.Run(context.Background(), trace.NewSliceReader(tr), []coherence.Engine{d0, drg}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestTable4Render(t *testing.T) {
	out := Table4(smallResults(t))
	for _, want := range []string{"Dir0B", "Dragon", "rd-hit", "rm-blk-cln", "wh-distrib", "instr"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
	// Each reference class sums: instr frequency is 20%.
	if !strings.Contains(out, "20.00") {
		t.Errorf("Table4 percentages off:\n%s", out)
	}
}

func TestFigure1Render(t *testing.T) {
	out := Figure1(smallResults(t)[0])
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "≤1 invalidation") {
		t.Errorf("Figure1 output:\n%s", out)
	}
}

func TestFigure2And3Render(t *testing.T) {
	rs := smallResults(t)
	pip, np := bus.Pipelined(), bus.NonPipelined()
	f2 := Figure2(rs, pip, np)
	if !strings.Contains(f2, "Dir0B") || !strings.Contains(f2, "Non-pipelined") {
		t.Errorf("Figure2:\n%s", f2)
	}
	f3 := Figure3([]string{"tiny"}, [][]sim.Result{rs}, pip, np)
	if !strings.Contains(f3, "tiny") {
		t.Errorf("Figure3:\n%s", f3)
	}
}

func TestTable5AndFigure4Render(t *testing.T) {
	rs := smallResults(t)
	t5 := Table5(rs, bus.Pipelined())
	for _, want := range []string{"cumulative", "mem access", "dir access"} {
		if !strings.Contains(t5, want) {
			t.Errorf("Table5 missing %q:\n%s", want, t5)
		}
	}
	f4 := Figure4(rs, bus.Pipelined())
	if !strings.Contains(f4, "Figure 4") || !strings.Contains(f4, "Dragon") {
		t.Errorf("Figure4:\n%s", f4)
	}
}

func TestFigure5AndSectionsRender(t *testing.T) {
	rs := smallResults(t)
	f5 := Figure5(rs, bus.Pipelined())
	if !strings.Contains(f5, "cycles/txn") {
		t.Errorf("Figure5:\n%s", f5)
	}
	s51 := Section51(rs, bus.Pipelined(), []float64{0, 1})
	if !strings.Contains(s51, "q") || !strings.Contains(s51, "gap%") {
		t.Errorf("Section51:\n%s", s51)
	}
	s52 := Section52(rs, rs, bus.Pipelined())
	if !strings.Contains(s52, "with locks") || !strings.Contains(s52, "1.00") {
		t.Errorf("Section52:\n%s", s52)
	}
}

func TestWriteCSV(t *testing.T) {
	rs := smallResults(t)
	var buf strings.Builder
	if err := WriteCSV(&buf, rs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 schemes
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "scheme,refs,transactions,cycles_per_ref_pipelined") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Dir0B,5,") {
		t.Errorf("row = %q", lines[1])
	}
	// Every row has the header's column count.
	cols := strings.Count(lines[0], ",")
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != cols {
			t.Errorf("ragged row: %q", l)
		}
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("rm-blk-cln"); got != "rm_blk_cln" {
		t.Errorf("sanitize = %q", got)
	}
	if got := sanitize("mem access"); got != "mem_access" {
		t.Errorf("sanitize = %q", got)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := NewTable("caption", "Scheme", "cycles")
	tb.AddRow("Dir0B", "0.0491")
	tb.AddRow("has|pipe", "1")
	out := tb.RenderMarkdown()
	if !strings.HasPrefix(out, "**caption**\n\n") {
		t.Errorf("caption missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[2] != "| Scheme | cycles |" {
		t.Errorf("header = %q", lines[2])
	}
	if lines[3] != "|:--|--:|" {
		t.Errorf("alignment = %q", lines[3])
	}
	if !strings.Contains(out, `has\|pipe`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	if (&Table{}).RenderMarkdown() != "" {
		t.Error("empty table should render empty")
	}
}

func TestTable4Legend(t *testing.T) {
	out := Table4Legend()
	for _, want := range []string{"LEGEND", "rm-blk-cln", "Read miss, block clean in another cache", "wh-distrib"} {
		if !strings.Contains(out, want) {
			t.Errorf("legend missing %q", want)
		}
	}
}
