package mc

import (
	"fmt"
	"strings"
	"testing"

	"dirsim/internal/coherence"
	"dirsim/internal/events"
	"dirsim/internal/trace"
)

// TestAllEnginesSound is the headline property: every scheme NewByName can
// build survives exhaustive reachable-state exploration of the 2-cache /
// 1-block universe with zero invariant violations.
func TestAllEnginesSound(t *testing.T) {
	for _, name := range coherence.EngineNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res, err := ExploreScheme(name, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != 0 {
				t.Fatalf("%s: %d violations, first: %v", name, len(res.Violations), res.Violations[0])
			}
			if res.Truncated {
				t.Fatalf("%s: exploration truncated at %d nodes", name, res.Nodes)
			}
			if res.Nodes < 2 {
				t.Fatalf("%s: implausibly small graph (%d nodes)", name, res.Nodes)
			}
			if res.Transitions != res.Nodes*4 { // 2 caches × {read, write} × 1 block
				t.Fatalf("%s: %d transitions for %d nodes, want %d",
					name, res.Transitions, res.Nodes, res.Nodes*4)
			}
		})
	}
}

// TestTwoBlockUniverse re-runs a directory and a snoopy scheme over two
// blocks, where cross-block state (pointer budgets, store entries) can
// interact.
func TestTwoBlockUniverse(t *testing.T) {
	for _, name := range []string{"dir1nb", "dir0b", "mesi", "moesi", "dragon"} {
		res, err := ExploreScheme(name, Options{Blocks: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("%s: %v", name, res.Violations[0])
		}
		one, err := ExploreScheme(name, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Nodes <= one.Nodes {
			t.Fatalf("%s: 2-block graph (%d nodes) not larger than 1-block (%d)",
				name, res.Nodes, one.Nodes)
		}
	}
}

// TestAbstractCoverage pins the protocol semantics the coverage report
// makes visible: which sharing configurations each scheme can reach.
func TestAbstractCoverage(t *testing.T) {
	cases := []struct {
		scheme          string
		wantUnreachable []string
	}{
		// Dir1NB's single pointer forbids any two-cache copy.
		{"dir1nb", []string{"{0,1}/clean", "{0,1}/written"}},
		// Invalidation protocols share clean copies but a written block
		// lives in exactly one cache.
		{"dirnnb", []string{"{0,1}/written"}},
		{"dir0b", []string{"{0,1}/written"}},
		{"wti", []string{"{0,1}/written"}},
		{"mesi", []string{"{0,1}/written"}},
		// MOESI's Owned state and Dragon's shared-stale blocks allow
		// dirty sharing: the whole universe is reachable.
		{"moesi", nil},
		{"dragon", nil},
		// Firefly writes shared updates through to memory, so a block
		// held by both caches is never stale.
		{"firefly", []string{"{0,1}/written"}},
	}
	for _, c := range cases {
		res, err := ExploreScheme(c.scheme, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := strings.Join(res.Unreachable, " ")
		want := strings.Join(c.wantUnreachable, " ")
		if got != want {
			t.Errorf("%s: unreachable = %q, want %q (reached %q)",
				c.scheme, got, want, strings.Join(res.Reached, " "))
		}
		if len(res.Reached)+len(res.Unreachable) != 7 {
			t.Errorf("%s: abstract universe %d+%d states, want 7",
				c.scheme, len(res.Reached), len(res.Unreachable))
		}
	}
}

// buggyEngine violates its invariant as soon as both caches have written:
// the model checker must find the 2-step counterexample.
type buggyEngine struct {
	wrote [2]bool
	stats coherence.Stats
}

func (e *buggyEngine) Name() string            { return "Buggy" }
func (e *buggyEngine) Caches() int             { return 2 }
func (e *buggyEngine) Stats() *coherence.Stats { return &e.stats }
func (e *buggyEngine) ResetStats()             {}
func (e *buggyEngine) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	if kind == trace.Write {
		e.wrote[c] = true
	}
	return events.ReadHit
}
func (e *buggyEngine) CheckInvariants() error {
	if e.wrote[0] && e.wrote[1] {
		return fmt.Errorf("both caches wrote")
	}
	return nil
}
func (e *buggyEngine) StateKey(blocks []uint64) string {
	return fmt.Sprintf("%v", e.wrote)
}
func (e *buggyEngine) Truth(block uint64) ([]int, bool) { return nil, false }

func TestShortestCounterexample(t *testing.T) {
	res, err := Explore(func() (coherence.Engine, error) { return &buggyEngine{}, nil }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("violation not found")
	}
	v := res.Violations[0]
	if len(v.Path) != 2 {
		t.Fatalf("counterexample %v has %d steps, want the shortest (2)", v, len(v.Path))
	}
	for _, a := range v.Path {
		if a.Kind != trace.Write {
			t.Fatalf("counterexample step %v is not a write", a)
		}
	}
}

// flakyEngine keys its state off a per-construction serial number, so a
// replay never reproduces the same key: the determinism cross-check must
// flag it.
type flakyEngine struct {
	serial int
	stats  coherence.Stats
}

func (e *flakyEngine) Name() string            { return "Flaky" }
func (e *flakyEngine) Caches() int             { return 2 }
func (e *flakyEngine) Stats() *coherence.Stats { return &e.stats }
func (e *flakyEngine) ResetStats()             {}
func (e *flakyEngine) Access(c int, kind trace.Kind, block uint64, first bool) events.Type {
	return events.ReadHit
}
func (e *flakyEngine) CheckInvariants() error { return nil }
func (e *flakyEngine) StateKey(blocks []uint64) string {
	return fmt.Sprintf("serial%d", e.serial)
}
func (e *flakyEngine) Truth(block uint64) ([]int, bool) { return nil, false }

func TestDeterminismCheck(t *testing.T) {
	serial := 0
	mk := func() (coherence.Engine, error) {
		serial++
		return &flakyEngine{serial: serial}, nil
	}
	res, err := Explore(mk, Options{MaxNodes: 64})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Err.Error(), "nondeterministic") {
			found = true
		}
	}
	if !found {
		t.Fatalf("determinism violation not detected: %v", res.Violations)
	}
}

// TestUniverseArithmetic pins the abstract universe size formula.
func TestUniverseArithmetic(t *testing.T) {
	if got := len(abstractUniverse(2)); got != 7 {
		t.Fatalf("2-cache universe has %d states, want 7", got)
	}
	if got := len(abstractUniverse(3)); got != 15 {
		t.Fatalf("3-cache universe has %d states, want 15", got)
	}
}

func TestOptionsValidate(t *testing.T) {
	if _, err := ExploreScheme("dir0b", Options{Caches: 99}); err == nil {
		t.Fatal("oversized universe accepted")
	}
	if _, err := ExploreScheme("no-such-scheme", Options{}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}
