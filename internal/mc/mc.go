// Package mc is an explicit-state model checker for the coherence engines:
// it performs a breadth-first exploration of the reachable protocol-state
// graph over a small fixed universe of caches and blocks, checking every
// engine invariant at every reachable state.
//
// The exhaustive tests in internal/coherence enumerate reference
// *sequences* to a fixed depth — 4^9 runs, most of which revisit the same
// handful of states. mc instead enumerates *states*: a node is the
// engine's canonical protocol state (coherence.Inspector.StateKey — ground
// truth plus directory memory) combined with the set of blocks already
// referenced (the `first` flag is part of the transition function), and an
// edge is one classified memory reference. The visited set makes the
// exploration exhaustive over the reachable graph regardless of depth, the
// way the BedRock-style protocol verifications validate coherence
// protocols by state-space search rather than sampling.
//
// Because engines are deterministic and not clonable, nodes are
// re-materialised by replaying the shortest action path from the initial
// state; BFS guarantees those paths are minimal, so every reported
// violation comes with a shortest counterexample trace.
package mc

import (
	"fmt"
	"sort"
	"strings"

	"dirsim/internal/coherence"
	"dirsim/internal/trace"
)

// Action is one edge label: a classified reference issued to the engine.
type Action struct {
	Cache int
	Kind  trace.Kind
	Block uint64
}

// String renders the action as "c0 write b1".
func (a Action) String() string {
	return fmt.Sprintf("c%d %s b%d", a.Cache, a.Kind, a.Block)
}

// Options sizes the explored universe.
type Options struct {
	// Caches is the number of caches (default 2).
	Caches int
	// Blocks is the number of distinct blocks referenced (default 1).
	// Blocks are numbered 1..Blocks.
	Blocks int
	// MaxNodes caps the exploration (default 1 << 16); Result.Truncated
	// reports whether the cap was hit.
	MaxNodes int
	// SkipDeterminismCheck disables the replay determinism cross-check
	// (each new state's path is replayed on a second fresh engine and
	// the keys compared).
	SkipDeterminismCheck bool
}

func (o Options) withDefaults() Options {
	if o.Caches == 0 {
		o.Caches = 2
	}
	if o.Blocks == 0 {
		o.Blocks = 1
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 1 << 16
	}
	return o
}

func (o Options) validate() error {
	if o.Caches < 1 || o.Caches > 8 {
		return fmt.Errorf("mc: cache count %d out of range [1,8]", o.Caches)
	}
	if o.Blocks < 1 || o.Blocks > 8 {
		return fmt.Errorf("mc: block count %d out of range [1,8]", o.Blocks)
	}
	if o.MaxNodes < 1 {
		return fmt.Errorf("mc: MaxNodes %d must be positive", o.MaxNodes)
	}
	return nil
}

// Violation is an invariant failure (or determinism failure) together with
// the shortest reference sequence that provokes it from the initial state.
type Violation struct {
	Path []Action
	Err  error
}

func (v Violation) String() string {
	steps := make([]string, len(v.Path))
	for i, a := range v.Path {
		steps[i] = a.String()
	}
	return fmt.Sprintf("after [%s]: %v", strings.Join(steps, ", "), v.Err)
}

// Result summarises one engine's reachable state graph.
type Result struct {
	// Engine is the scheme name.
	Engine string
	// Caches and Blocks echo the explored universe.
	Caches, Blocks int
	// Nodes is the number of distinct reachable states (including the
	// initial state), Edges the number of distinct state-to-state
	// transitions, and Transitions the total number of (state, action)
	// pairs explored (= Nodes × actions when not truncated).
	Nodes, Edges, Transitions int
	// Depth is the eccentricity of the initial state: the longest
	// shortest-path distance to any reachable state.
	Depth int
	// Violations lists invariant and determinism failures, each with a
	// shortest counterexample path. Empty means the engine is sound over
	// this universe.
	Violations []Violation
	// Reached lists the abstract per-block sharing configurations
	// (holder set × clean/written) observed at some reachable state,
	// sorted; Unreachable lists the rest of the abstract universe. A
	// configuration a protocol can never enter — {0,1}/written under an
	// exclusive scheme, say — is protocol semantics made visible.
	Reached, Unreachable []string
	// Truncated reports whether MaxNodes stopped the exploration early.
	Truncated bool
}

// node is one reachable state, addressed by the action path that first
// discovered it (parent chain), which BFS keeps shortest.
type node struct {
	parent int // index of the discovering node, -1 for the root
	via    int // action index taken from parent
	depth  int
	seen   uint64 // bitmask of blocks already referenced (block i → bit i-1)
}

// Explore builds engines with mk and explores their reachable state graph.
// The engine must implement coherence.Inspector.
func Explore(mk func() (coherence.Engine, error), opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}

	probe, err := mk()
	if err != nil {
		return nil, err
	}
	if _, ok := probe.(coherence.Inspector); !ok {
		return nil, fmt.Errorf("mc: engine %s does not implement coherence.Inspector", probe.Name())
	}
	if probe.Caches() < opts.Caches {
		return nil, fmt.Errorf("mc: engine %s simulates %d caches, universe needs %d",
			probe.Name(), probe.Caches(), opts.Caches)
	}

	blocks := make([]uint64, opts.Blocks)
	for i := range blocks {
		blocks[i] = uint64(i + 1)
	}
	var actions []Action
	for c := 0; c < opts.Caches; c++ {
		for _, k := range []trace.Kind{trace.Read, trace.Write} {
			for _, b := range blocks {
				actions = append(actions, Action{Cache: c, Kind: k, Block: b})
			}
		}
	}

	res := &Result{Engine: probe.Name(), Caches: opts.Caches, Blocks: opts.Blocks}

	// pathTo reconstructs the shortest action path to node i.
	nodes := []node{}
	pathTo := func(i int) []Action {
		var rev []int
		for n := i; nodes[n].parent >= 0; n = nodes[n].parent {
			rev = append(rev, nodes[n].via)
		}
		path := make([]Action, len(rev))
		for j := range rev {
			path[j] = actions[rev[len(rev)-1-j]]
		}
		return path
	}
	// replay materialises a fresh engine in the state path leads to.
	replay := func(path []Action) (coherence.Engine, error) {
		e, err := mk()
		if err != nil {
			return nil, err
		}
		var seen uint64
		for _, a := range path {
			bit := uint64(1) << (a.Block - 1)
			e.Access(a.Cache, a.Kind, a.Block, seen&bit == 0)
			seen |= bit
		}
		return e, nil
	}

	reached := map[string]bool{}
	observe := func(e coherence.Engine) {
		insp := e.(coherence.Inspector)
		for _, b := range blocks {
			holders, dirty := insp.Truth(b)
			reached[abstractState(holders, dirty)] = true
		}
	}
	key := func(e coherence.Engine, seen uint64) string {
		return fmt.Sprintf("%s|seen=%x", e.(coherence.Inspector).StateKey(blocks), seen)
	}

	root, err := replay(nil)
	if err != nil {
		return nil, err
	}
	if ierr := root.CheckInvariants(); ierr != nil {
		res.Violations = append(res.Violations, Violation{Err: ierr})
	}
	observe(root)
	index := map[string]int{key(root, 0): 0}
	nodes = append(nodes, node{parent: -1, via: -1})
	edges := map[[2]int]bool{}

	for i := 0; i < len(nodes); i++ {
		if len(nodes) >= opts.MaxNodes {
			res.Truncated = true
			break
		}
		path := pathTo(i)
		for ai, a := range actions {
			e, err := replay(path)
			if err != nil {
				return nil, err
			}
			bit := uint64(1) << (a.Block - 1)
			e.Access(a.Cache, a.Kind, a.Block, nodes[i].seen&bit == 0)
			res.Transitions++
			newSeen := nodes[i].seen | bit
			if ierr := e.CheckInvariants(); ierr != nil {
				res.Violations = append(res.Violations,
					Violation{Path: append(path, a), Err: ierr})
				continue // do not explore past a corrupted state
			}
			k := key(e, newSeen)
			j, ok := index[k]
			if !ok {
				j = len(nodes)
				index[k] = j
				nodes = append(nodes, node{parent: i, via: ai, depth: nodes[i].depth + 1, seen: newSeen})
				observe(e)
				if nodes[j].depth > res.Depth {
					res.Depth = nodes[j].depth
				}
				if !opts.SkipDeterminismCheck {
					e2, err := replay(pathTo(j))
					if err != nil {
						return nil, err
					}
					if k2 := key(e2, newSeen); k2 != k {
						res.Violations = append(res.Violations, Violation{
							Path: pathTo(j),
							Err:  fmt.Errorf("mc: nondeterministic replay: %q vs %q", k, k2),
						})
					}
				}
			}
			edges[[2]int{i, j}] = true
		}
	}

	res.Nodes = len(nodes)
	res.Edges = len(edges)
	for s := range reached {
		res.Reached = append(res.Reached, s)
	}
	sort.Strings(res.Reached)
	for _, s := range abstractUniverse(opts.Caches) {
		if !reached[s] {
			res.Unreachable = append(res.Unreachable, s)
		}
	}
	return res, nil
}

// ExploreScheme explores the scheme built by coherence.NewByName with a
// cache count matching the universe.
func ExploreScheme(name string, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	return Explore(func() (coherence.Engine, error) {
		return coherence.NewByName(name, coherence.Config{Caches: opts.Caches})
	}, opts)
}

// abstractState renders one block's ground truth as "{0,1}/written" or
// "{0}/clean"; the empty holder set is "{}/clean".
func abstractState(holders []int, dirty bool) string {
	var b strings.Builder
	b.WriteString("{")
	for i, h := range holders {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%d", h)
	}
	b.WriteString("}")
	if dirty {
		b.WriteString("/written")
	} else {
		b.WriteString("/clean")
	}
	return b.String()
}

// abstractUniverse enumerates every syntactically possible per-block
// configuration for n caches: each holder subset clean or written, except
// that an uncached block cannot be in the written state.
func abstractUniverse(n int) []string {
	var out []string
	for mask := 0; mask < 1<<n; mask++ {
		var holders []int
		for c := 0; c < n; c++ {
			if mask&(1<<c) != 0 {
				holders = append(holders, c)
			}
		}
		out = append(out, abstractState(holders, false))
		if mask != 0 {
			out = append(out, abstractState(holders, true))
		}
	}
	sort.Strings(out)
	return out
}
