# Keep `check` equal to what CI runs: a clean checkout that passes
# `make check` will pass the workflow.

GO ?= go

.PHONY: build test race lint mc check fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: go vet plus the dirsim-specific rule suite.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dirsimlint ./...

# Explicit-state model check of every engine over the 2-cache universe,
# then the 2-block universe where cross-block state can interact.
mc:
	$(GO) run ./cmd/dirsimlint -mc
	$(GO) run ./cmd/dirsimlint -mc -blocks 2

check: build lint test race mc

# Short local fuzz of the scheme registry (CI runs the seed corpus via
# `go test`; this explores further).
fuzz:
	$(GO) test ./internal/coherence/ -run FuzzNewByName -fuzz FuzzNewByName -fuzztime 30s

# Driver throughput baseline: sequential vs parallel lockstep simulation
# over four schemes, recorded as a JSON benchmark log for comparison
# across commits (CI runs the same benchmark once as a smoke test).
bench:
	$(GO) test -run '^$$' -bench SimulatorThroughput -benchtime 1x -json . | tee BENCH_throughput.json
