# Keep `check` equal to what CI runs: a clean checkout that passes
# `make check` will pass the workflow.

GO ?= go

.PHONY: build test race lint mc check fuzz bench fault-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: go vet plus the dirsim-specific rule suite.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dirsimlint ./...

# Explicit-state model check of every engine over the 2-cache universe,
# then the 2-block universe where cross-block state can interact.
mc:
	$(GO) run ./cmd/dirsimlint -mc
	$(GO) run ./cmd/dirsimlint -mc -blocks 2

check: build lint test race mc

# Short local fuzz of the scheme registry (CI runs the seed corpus via
# `go test`; this explores further).
fuzz:
	$(GO) test ./internal/coherence/ -run FuzzNewByName -fuzz FuzzNewByName -fuzztime 30s

# End-to-end resilience drill (same scenario CI runs): a sweep with an
# injected panic, a truncated trace and transient faults on every job
# must exit nonzero yet leave a partial CSV, a failure manifest and a
# checkpoint; a clean -resume run must reproduce the fault-free output
# byte for byte.
fault-smoke:
	rm -rf fault-smoke.tmp && mkdir fault-smoke.tmp
	$(GO) run ./cmd/sweep -workloads pops -schemes dir0b,dragon -cpus 2,4,8 \
		-refs 6000 -seeds 2 -parallel 2 -o fault-smoke.tmp/clean.csv
	! $(GO) run ./cmd/sweep -workloads pops -schemes dir0b,dragon -cpus 2,4,8 \
		-refs 6000 -seeds 2 -parallel 2 -o fault-smoke.tmp/faulty.csv \
		-fault-panic 1 -fault-jobs 2 -fault-truncate 3000 -fault-transient 1 \
		-retry-base 1ms -checkpoint fault-smoke.tmp/ck.json \
		-manifest fault-smoke.tmp/failures.json
	test -s fault-smoke.tmp/faulty.csv
	grep -q '"jobs_failed": 2' fault-smoke.tmp/failures.json
	$(GO) run ./cmd/sweep -workloads pops -schemes dir0b,dragon -cpus 2,4,8 \
		-refs 6000 -seeds 2 -parallel 2 -o fault-smoke.tmp/resumed.csv \
		-checkpoint fault-smoke.tmp/ck.json -resume
	cmp fault-smoke.tmp/clean.csv fault-smoke.tmp/resumed.csv
	rm -rf fault-smoke.tmp

# Driver throughput baseline: sequential vs parallel lockstep simulation
# over four schemes, recorded as a JSON benchmark log for comparison
# across commits (CI runs the same benchmark once as a smoke test).
bench:
	$(GO) test -run '^$$' -bench SimulatorThroughput -benchtime 1x -json . | tee BENCH_throughput.json
