# Keep `check` equal to what CI runs: a clean checkout that passes
# `make check` will pass the workflow.

GO ?= go

.PHONY: build test race lint lint-sarif mc check fuzz bench bench-json bench-regress fault-smoke serve serve-smoke trace-smoke promscrape-smoke soak-smoke cluster-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: go vet plus the dirsim-specific rule suite.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/dirsimlint ./...

# SARIF export for code-scanning upload (CI attaches dirsimlint.sarif to
# the security tab via codeql-action/upload-sarif). Exit 1 — findings —
# still produces a useful upload, so only exit 2 (load/analysis failure)
# fails the target. Runs a built binary, not `go run`, because go run
# collapses every nonzero program exit to 1 and would mask exit 2.
lint-sarif:
	rm -rf lint-sarif.tmp && mkdir lint-sarif.tmp
	$(GO) build -o lint-sarif.tmp/dirsimlint ./cmd/dirsimlint
	./lint-sarif.tmp/dirsimlint -format sarif ./... > dirsimlint.sarif; \
	code=$$?; rm -rf lint-sarif.tmp; test $$code -eq 0 || test $$code -eq 1

# Explicit-state model check of every engine over the 2-cache universe,
# then the 2-block universe where cross-block state can interact.
mc:
	$(GO) run ./cmd/dirsimlint -mc
	$(GO) run ./cmd/dirsimlint -mc -blocks 2

check: build lint test race mc

# Short local fuzz of the scheme registry (CI runs the seed corpus via
# `go test`; this explores further).
fuzz:
	$(GO) test ./internal/coherence/ -run FuzzNewByName -fuzz FuzzNewByName -fuzztime 30s

# End-to-end resilience drill (same scenario CI runs): a sweep with an
# injected panic, a truncated trace and transient faults on every job
# must exit nonzero yet leave a partial CSV, a failure manifest and a
# checkpoint; a clean -resume run must reproduce the fault-free output
# byte for byte.
fault-smoke:
	rm -rf fault-smoke.tmp && mkdir fault-smoke.tmp
	$(GO) run ./cmd/sweep -workloads pops -schemes dir0b,dragon -cpus 2,4,8 \
		-refs 6000 -seeds 2 -parallel 2 -o fault-smoke.tmp/clean.csv
	! $(GO) run ./cmd/sweep -workloads pops -schemes dir0b,dragon -cpus 2,4,8 \
		-refs 6000 -seeds 2 -parallel 2 -o fault-smoke.tmp/faulty.csv \
		-fault-panic 1 -fault-jobs 2 -fault-truncate 3000 -fault-transient 1 \
		-retry-base 1ms -checkpoint fault-smoke.tmp/ck.json \
		-manifest fault-smoke.tmp/failures.json
	test -s fault-smoke.tmp/faulty.csv
	grep -q '"jobs_failed": 2' fault-smoke.tmp/failures.json
	$(GO) run ./cmd/sweep -workloads pops -schemes dir0b,dragon -cpus 2,4,8 \
		-refs 6000 -seeds 2 -parallel 2 -o fault-smoke.tmp/resumed.csv \
		-checkpoint fault-smoke.tmp/ck.json -resume
	cmp fault-smoke.tmp/clean.csv fault-smoke.tmp/resumed.csv
	rm -rf fault-smoke.tmp

# Run the simulation daemon locally (API.md documents the endpoints).
serve:
	$(GO) run ./cmd/dirsimd -addr 127.0.0.1:8023 -cache-dir dirsimd-cache

# End-to-end service drill (same scenario CI runs): start dirsimd on an
# ephemeral port, submit a small POPS/Dir1NB job and wait for it, then
# re-submit the identical spec and prove the content-addressed cache
# served it — the response bytes match and /metrics shows zero new
# runner jobs — and finally SIGTERM the daemon and require a clean
# (exit 0) drain.
serve-smoke:
	rm -rf serve-smoke.tmp && mkdir serve-smoke.tmp
	$(GO) build -o serve-smoke.tmp/dirsimd ./cmd/dirsimd
	set -e; \
	./serve-smoke.tmp/dirsimd -addr 127.0.0.1:0 \
		-ready-file serve-smoke.tmp/addr -cache-dir serve-smoke.tmp/cache \
		-parallel 2 > serve-smoke.tmp/daemon.log 2>&1 & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 100); do test -s serve-smoke.tmp/addr && break; sleep 0.1; done; \
	test -s serve-smoke.tmp/addr; \
	addr=$$(cat serve-smoke.tmp/addr); \
	printf '%s' '{"sweep":{"workloads":["pops"],"schemes":["dir1nb"],"cpus":[4],"refs":20000,"seeds":1}}' \
		> serve-smoke.tmp/req.json; \
	curl -fsS http://$$addr/v1/engines | grep -q '"dir1nb"'; \
	curl -fsS -X POST --data-binary @serve-smoke.tmp/req.json \
		"http://$$addr/v1/jobs?wait=1" -o serve-smoke.tmp/first.json; \
	grep -q '"status":"done"' serve-smoke.tmp/first.json; \
	curl -fsS http://$$addr/metrics -o serve-smoke.tmp/m1.json; \
	curl -fsS -X POST --data-binary @serve-smoke.tmp/req.json \
		"http://$$addr/v1/jobs?wait=1" -o serve-smoke.tmp/second.json; \
	cmp serve-smoke.tmp/first.json serve-smoke.tmp/second.json; \
	curl -fsS http://$$addr/metrics -o serve-smoke.tmp/m2.json; \
	j1=$$(grep -o '"jobs_total":[0-9]*' serve-smoke.tmp/m1.json); \
	j2=$$(grep -o '"jobs_total":[0-9]*' serve-smoke.tmp/m2.json); \
	test -n "$$j1" && test "$$j1" = "$$j2"; \
	kill -TERM $$pid; \
	wait $$pid; \
	trap - EXIT; \
	grep -q 'drained cleanly' serve-smoke.tmp/daemon.log
	rm -rf serve-smoke.tmp

# Multi-tenant burn-in (same scenario CI runs): thousands of concurrent
# submits across three synthetic tenants against a stateful dirsimd,
# with one SIGKILL + restart mid-soak. The driver (cmd/soak) proves
# zero lost jobs (every ack reaches done), zero duplicated work (the
# revived daemon's jobs_total equals exactly the cells without a
# durable checkpoint at restart), bounded queue depth via the
# dirsim_queue_depth Prometheus histogram, and that batch tenants
# cannot starve interactive ?wait=1 submits beyond their fair share.
soak-smoke:
	rm -rf soak-smoke.tmp && mkdir soak-smoke.tmp
	$(GO) build -o soak-smoke.tmp/dirsimd ./cmd/dirsimd
	$(GO) run ./cmd/soak -daemon soak-smoke.tmp/dirsimd -dir soak-smoke.tmp/run -jobs 2001
	rm -rf soak-smoke.tmp

# Fleet drill (same scenario CI runs): three clustered dirsimd daemons
# on ephemeral ports share a membership file written after they bind
# (the lazy FileSource retries the load, so flag order does not matter).
# The drill proves the three cluster properties end to end:
#   1. a clustered sweep's CSV is byte-identical to the local
#      single-process sweep's;
#   2. every cell is simulated exactly once fleet-wide — the summed
#      jobs_total across daemons equals the cell count, and an identical
#      re-sweep adds zero jobs (content-addressed cache + rendezvous
#      routing dedup);
#   3. SIGKILLing one daemon mid-sweep does not lose the sweep — HRW
#      failover reroutes its cells and the CSV still matches the local
#      run byte for byte.
cluster-smoke:
	rm -rf cluster-smoke.tmp && mkdir cluster-smoke.tmp
	$(GO) build -o cluster-smoke.tmp/dirsimd ./cmd/dirsimd
	$(GO) build -o cluster-smoke.tmp/sweep ./cmd/sweep
	$(GO) build -o cluster-smoke.tmp/tracecheck ./cmd/tracecheck
	$(GO) build -o cluster-smoke.tmp/dirsimtop ./cmd/dirsimtop
	./cluster-smoke.tmp/sweep -workloads pops -schemes dir0b,dragon -cpus 2,4 \
		-refs 6000 -seeds 2 -parallel 2 -o cluster-smoke.tmp/local.csv
	./cluster-smoke.tmp/sweep -workloads pops -schemes dir0b,dragon -cpus 2,4 \
		-refs 150000 -seeds 2 -parallel 2 -o cluster-smoke.tmp/local-big.csv
	set -e; \
	for n in 1 2 3; do \
		./cluster-smoke.tmp/dirsimd -addr 127.0.0.1:0 \
			-ready-file cluster-smoke.tmp/addr$$n \
			-cache-dir cluster-smoke.tmp/cache$$n -parallel 2 \
			-cluster-peers cluster-smoke.tmp/peers.json -cluster-probe 500ms \
			> cluster-smoke.tmp/daemon$$n.log 2>&1 & \
		echo $$! > cluster-smoke.tmp/pid$$n; \
	done; \
	trap "kill $$(cat cluster-smoke.tmp/pid1 cluster-smoke.tmp/pid2 cluster-smoke.tmp/pid3) 2>/dev/null || true" EXIT; \
	for n in 1 2 3; do \
		for i in $$(seq 1 100); do test -s cluster-smoke.tmp/addr$$n && break; sleep 0.1; done; \
		test -s cluster-smoke.tmp/addr$$n; \
	done; \
	printf '{"key":"smoke","peers":[{"addr":"http://%s"},{"addr":"http://%s"},{"addr":"http://%s"}]}' \
		"$$(cat cluster-smoke.tmp/addr1)" "$$(cat cluster-smoke.tmp/addr2)" "$$(cat cluster-smoke.tmp/addr3)" \
		> cluster-smoke.tmp/peers.json; \
	./cluster-smoke.tmp/sweep -cluster cluster-smoke.tmp/peers.json -hedge 0 \
		-workloads pops -schemes dir0b,dragon -cpus 2,4 -refs 6000 -seeds 2 \
		-parallel 2 -retry-base 50ms -o cluster-smoke.tmp/clustered.csv; \
	cmp cluster-smoke.tmp/local.csv cluster-smoke.tmp/clustered.csv; \
	total=0; \
	for n in 1 2 3; do \
		v=$$(curl -fsS "http://$$(cat cluster-smoke.tmp/addr$$n)/metrics" \
			| grep -o '"jobs_total":[0-9]*' | cut -d: -f2); \
		total=$$((total+v)); \
	done; \
	test "$$total" -eq 4; \
	./cluster-smoke.tmp/sweep -cluster cluster-smoke.tmp/peers.json -hedge 0 \
		-workloads pops -schemes dir0b,dragon -cpus 2,4 -refs 6000 -seeds 2 \
		-parallel 2 -retry-base 50ms -o cluster-smoke.tmp/resweep.csv; \
	cmp cluster-smoke.tmp/local.csv cluster-smoke.tmp/resweep.csv; \
	total=0; \
	for n in 1 2 3; do \
		v=$$(curl -fsS "http://$$(cat cluster-smoke.tmp/addr$$n)/metrics" \
			| grep -o '"jobs_total":[0-9]*' | cut -d: -f2); \
		total=$$((total+v)); \
	done; \
	test "$$total" -eq 4; \
	./cluster-smoke.tmp/sweep -workloads pops -schemes dir0b,dragon -cpus 2,4,8 \
		-refs 9000 -seeds 3 -parallel 2 -o cluster-smoke.tmp/local-traced.csv; \
	./cluster-smoke.tmp/sweep -cluster cluster-smoke.tmp/peers.json -hedge 0 \
		-workloads pops -schemes dir0b,dragon -cpus 2,4,8 -refs 9000 -seeds 3 \
		-parallel 2 -retry-base 50ms -trace cluster-smoke.tmp/fleet.trace \
		-o cluster-smoke.tmp/traced.csv; \
	cmp cluster-smoke.tmp/local-traced.csv cluster-smoke.tmp/traced.csv; \
	./cluster-smoke.tmp/tracecheck -format chrome -min-events 24 cluster-smoke.tmp/fleet.trace; \
	./cluster-smoke.tmp/tracecheck -format spans -min-services 4 cluster-smoke.tmp/fleet.trace; \
	curl -fsS -H "X-Dirsim-Cluster-Key: smoke" \
		"http://$$(cat cluster-smoke.tmp/addr1)/v1/cluster/metrics?format=prometheus" \
		| ./cluster-smoke.tmp/tracecheck -format prom; \
	rows=$$(curl -fsS -H "X-Dirsim-Cluster-Key: smoke" \
		"http://$$(cat cluster-smoke.tmp/addr1)/v1/cluster/metrics" \
		| grep -o '"addr"' | wc -l); \
	test "$$rows" -eq 3; \
	./cluster-smoke.tmp/dirsimtop -once -key smoke \
		-addr "http://$$(cat cluster-smoke.tmp/addr1)" \
		| grep -q '3 members, 3 up'; \
	( sleep 0.3; kill -9 "$$(cat cluster-smoke.tmp/pid3)" ) & killer=$$!; \
	./cluster-smoke.tmp/sweep -cluster cluster-smoke.tmp/peers.json \
		-workloads pops -schemes dir0b,dragon -cpus 2,4 -refs 150000 -seeds 2 \
		-parallel 2 -retry-base 50ms -o cluster-smoke.tmp/killed.csv; \
	wait $$killer 2>/dev/null || true; \
	cmp cluster-smoke.tmp/local-big.csv cluster-smoke.tmp/killed.csv; \
	kill -TERM "$$(cat cluster-smoke.tmp/pid1)" "$$(cat cluster-smoke.tmp/pid2)"; \
	wait "$$(cat cluster-smoke.tmp/pid1)" "$$(cat cluster-smoke.tmp/pid2)"; \
	trap - EXIT; \
	grep -q 'drained cleanly' cluster-smoke.tmp/daemon1.log; \
	grep -q 'drained cleanly' cluster-smoke.tmp/daemon2.log
	rm -rf cluster-smoke.tmp

# Observability drill (same scenario CI runs): a POPS run under Dir1B
# with the flight recorder on must produce a valid NDJSON trace and a
# valid Chrome trace (checked by cmd/tracecheck), and tracing must not
# perturb results — the traced run's CSV is byte-identical to the
# untraced one.
trace-smoke:
	rm -rf trace-smoke.tmp && mkdir trace-smoke.tmp
	$(GO) build -o trace-smoke.tmp/dirsim ./cmd/dirsim
	$(GO) build -o trace-smoke.tmp/tracecheck ./cmd/tracecheck
	./trace-smoke.tmp/dirsim -workload pops -refs 50000 -schemes dir1b \
		-csv > trace-smoke.tmp/untraced.csv
	./trace-smoke.tmp/dirsim -workload pops -refs 50000 -schemes dir1b \
		-csv -trace-out trace-smoke.tmp/run.ndjson -spans \
		> trace-smoke.tmp/traced.csv
	cmp trace-smoke.tmp/untraced.csv trace-smoke.tmp/traced.csv
	./trace-smoke.tmp/tracecheck -format ndjson -min-events 100 trace-smoke.tmp/run.ndjson
	./trace-smoke.tmp/dirsim -workload pops -refs 50000 -schemes dir1b \
		-csv -trace-out trace-smoke.tmp/run.json -spans > /dev/null
	./trace-smoke.tmp/tracecheck -format chrome -min-events 100 trace-smoke.tmp/run.json
	rm -rf trace-smoke.tmp

# Prometheus-scrape drill (same scenario CI runs): dirsimd on an
# ephemeral port with tracing on must serve a /metrics text exposition
# that passes the in-repo validator and a Perfetto-loadable per-job
# trace for a finished job.
promscrape-smoke:
	rm -rf promscrape-smoke.tmp && mkdir promscrape-smoke.tmp
	$(GO) build -o promscrape-smoke.tmp/dirsimd ./cmd/dirsimd
	$(GO) build -o promscrape-smoke.tmp/tracecheck ./cmd/tracecheck
	set -e; \
	./promscrape-smoke.tmp/dirsimd -addr 127.0.0.1:0 -trace-sample 8 \
		-ready-file promscrape-smoke.tmp/addr -parallel 2 \
		> promscrape-smoke.tmp/daemon.log 2>&1 & pid=$$!; \
	trap "kill $$pid 2>/dev/null || true" EXIT; \
	for i in $$(seq 1 100); do test -s promscrape-smoke.tmp/addr && break; sleep 0.1; done; \
	test -s promscrape-smoke.tmp/addr; \
	addr=$$(cat promscrape-smoke.tmp/addr); \
	printf '%s' '{"sweep":{"workloads":["pops"],"schemes":["dir1b"],"cpus":[4],"refs":20000,"seeds":1}}' \
		> promscrape-smoke.tmp/req.json; \
	curl -fsS -X POST --data-binary @promscrape-smoke.tmp/req.json \
		"http://$$addr/v1/jobs?wait=1" -o promscrape-smoke.tmp/result.json; \
	grep -q '"status":"done"' promscrape-smoke.tmp/result.json; \
	id=$$(grep -o '"id":"[0-9a-f]*"' promscrape-smoke.tmp/result.json | head -1 | cut -d'"' -f4); \
	test -n "$$id"; \
	curl -fsS "http://$$addr/metrics?format=prometheus" \
		| ./promscrape-smoke.tmp/tracecheck -format prom; \
	curl -fsS "http://$$addr/v1/jobs/$$id/trace" \
		| ./promscrape-smoke.tmp/tracecheck -format chrome -min-events 10; \
	curl -fsS "http://$$addr/v1/jobs/$$id/trace?format=ndjson" \
		| ./promscrape-smoke.tmp/tracecheck -format ndjson -min-events 10; \
	kill -TERM $$pid; \
	wait $$pid; \
	trap - EXIT; \
	grep -q 'drained cleanly' promscrape-smoke.tmp/daemon.log
	rm -rf promscrape-smoke.tmp

# Driver throughput baseline: sequential vs parallel lockstep simulation
# over four schemes, recorded as a JSON benchmark log for comparison
# across commits (CI runs the same benchmark once as a smoke test).
bench:
	$(GO) test -run '^$$' -bench SimulatorThroughput -benchtime 1x -json . | tee BENCH_throughput.json

# Refresh the committed data-oriented-core baseline (BENCH_7.json):
# re-measures the "after" section in place, preserving "before" (the
# numbers the rewrite started from) and the documented tolerances.
bench-json:
	$(GO) test -run '^$$' -bench SimulatorThroughput -benchmem -benchtime 2s . | $(GO) run ./cmd/benchjson -out BENCH_7.json -phase after

# What CI's bench-regress job runs: replay the benchmark and gate it
# against the committed baseline's tolerances.
bench-regress:
	$(GO) test -run '^$$' -bench SimulatorThroughput -benchmem -benchtime 1s . | $(GO) run ./cmd/benchjson -check BENCH_7.json
