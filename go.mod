module dirsim

go 1.22
