// Quickstart: generate a synthetic multiprocessor workload, run the
// paper's four head-to-head coherence schemes over it, and print the
// paper's primary metric — bus cycles per memory reference — under both
// bus models.
package main

import (
	"fmt"
	"log"

	"dirsim"
)

func main() {
	log.SetFlags(0)

	// A POPS-like workload: 4 CPUs, heavy lock spinning, read sharing.
	gen, err := dirsim.NewGenerator(dirsim.POPS(500_000))
	if err != nil {
		log.Fatal(err)
	}

	// The Section 3 schemes: Dir1NB, WTI, Dir0B, Dragon.
	engines, err := dirsim.Section3Engines(dirsim.EngineConfig{Caches: 4})
	if err != nil {
		log.Fatal(err)
	}

	// One pass over the trace feeds every engine in lockstep; first
	// references are excluded from costs, as in the paper.
	results, err := dirsim.Run(gen, engines, dirsim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	pip, np := dirsim.PipelinedBus(), dirsim.NonPipelinedBus()
	fmt.Println("bus cycles per memory reference (POPS workload)")
	fmt.Printf("%-8s  %9s  %13s\n", "scheme", "pipelined", "non-pipelined")
	for _, r := range results {
		fmt.Printf("%-8s  %9.4f  %13.4f\n", r.Scheme, r.CyclesPerRef(pip), r.CyclesPerRef(np))
	}

	// The paper's closing estimate: how many 10-MIPS processors can one
	// 100 ns bus sustain under the best scheme?
	best := results[len(results)-1] // Dragon
	fmt.Printf("\nsingle-bus limit with %s: %.1f effective processors\n",
		best.Scheme, dirsim.EffectiveProcessors(best.CyclesPerRef(pip), 2, 10, 100))
}
