// Scalability: the Section 6 design space as the processor count grows.
//
// Snoopy schemes stop scaling when the broadcast medium saturates; the
// paper's answer is a directory whose per-block state stays small while
// invalidations remain directed. This example sweeps the machine size and
// compares, for each directory organisation:
//
//   - bus cycles per reference (does performance hold up?),
//   - how often invalidations must fall back to broadcast,
//   - wasted directed invalidations (coded-set supersets),
//   - directory storage per memory block.
package main

import (
	"fmt"
	"log"

	"dirsim"
)

// workload scales the POPS-like preset to n processors.
func workload(n, refs int) dirsim.WorkloadConfig {
	cfg := dirsim.POPS(refs)
	cfg.Name = fmt.Sprintf("POPS-%dp", n)
	cfg.CPUs = n
	// Keep per-processor working sets constant as the machine grows.
	cfg.Locks = 1 + n/8
	return cfg
}

func main() {
	log.SetFlags(0)
	schemes := []string{"dirnnb", "dir0b", "dir2b", "dir4nb", "codedset"}
	fmt.Println("directory schemes as the machine grows (pipelined bus)")
	for _, n := range []int{4, 8, 16, 32} {
		cfg := workload(n, 400_000)
		gen, err := dirsim.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results, err := dirsim.RunSchemes(gen, schemes,
			dirsim.EngineConfig{Caches: n}, dirsim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d processors:\n", n)
		fmt.Printf("  %-10s  %10s  %14s  %14s\n", "scheme", "cycles/ref", "bcast/1k refs", "wasted/1k refs")
		for _, r := range results {
			per1k := func(v uint64) float64 { return float64(v) / float64(r.Stats.Refs) * 1000 }
			fmt.Printf("  %-10s  %10.4f  %14.2f  %14.2f\n",
				r.Scheme, r.CyclesPerRef(dirsim.PipelinedBus()),
				per1k(r.Stats.BroadcastInvals), per1k(r.Stats.WastedInvals))
		}
	}

	// Storage: bits of directory state per memory block for each
	// organisation — the Section 6 motivation in one table.
	fmt.Println("\ndirectory storage (bits per memory block)")
	fmt.Printf("  %-14s", "organisation")
	ns := []int{4, 16, 64, 256}
	for _, n := range ns {
		fmt.Printf("  %6s", fmt.Sprintf("n=%d", n))
	}
	fmt.Println()
	type mk struct {
		name  string
		store func(n int) dirsim.DirectoryStore
	}
	orgs := []mk{
		{"full-map", func(n int) dirsim.DirectoryStore { return dirsim.NewFullMapStore(n) }},
		{"two-bit", func(n int) dirsim.DirectoryStore { return dirsim.NewTwoBitStore() }},
		{"dir4b", func(n int) dirsim.DirectoryStore {
			s, err := dirsim.NewLimitedPointerStore(4, n, true)
			if err != nil {
				log.Fatal(err)
			}
			return s
		}},
		{"coded-set", func(n int) dirsim.DirectoryStore {
			s, err := dirsim.NewCodedSetStore(n)
			if err != nil {
				log.Fatal(err)
			}
			return s
		}},
	}
	for _, o := range orgs {
		fmt.Printf("  %-14s", o.name)
		for _, n := range ns {
			p := dirsim.DefaultStorageParams(n)
			fmt.Printf("  %6.1f", float64(o.store(n).StorageBits(p))/float64(p.MemoryBlocks))
		}
		fmt.Println()
	}
}
