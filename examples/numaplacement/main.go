// NUMA placement: the Section 7 machine at message level.
//
// Once memory and directory are distributed across the nodes (the paper's
// recipe for scaling), every miss becomes messages on an interconnect and
// a new question appears that the bus never asked: *where should each
// block live?* This example runs the same workload through the distributed
// full-map directory under the two classic home policies — address
// interleaving and first-touch — and reports the interconnect demand, the
// classic 2-hop/3-hop miss split, and how much locality the placement
// recovers.
package main

import (
	"fmt"
	"log"

	"dirsim"
)

func main() {
	log.SetFlags(0)

	for _, wl := range dirsim.Workloads(400_000) {
		fmt.Printf("%s:\n", wl.Name)
		fmt.Printf("  %-12s  %9s  %9s  %12s  %14s\n",
			"home policy", "msgs/ref", "hops/ref", "local homes", "3hop/1k refs")
		for _, policy := range []dirsim.NUMAConfig{
			{Nodes: 4, Policy: dirsim.Interleaved},
			{Nodes: 4, Policy: dirsim.FirstTouch},
		} {
			gen, err := dirsim.NewGenerator(wl)
			if err != nil {
				log.Fatal(err)
			}
			eng, err := dirsim.NewNUMA(policy)
			if err != nil {
				log.Fatal(err)
			}
			st, err := dirsim.RunNUMA(gen, eng, dirsim.NUMAOptions{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s  %9.4f  %9.4f  %11.0f%%  %14.2f\n",
				policy.Policy.String(),
				st.MessagesPerRef(), st.CriticalHopsPerRef(),
				st.LocalHomeFraction()*100,
				float64(st.ThreeHopMisses)/float64(st.Refs)*1000)
		}
		fmt.Println()
	}

	fmt.Println("larger machines: hops per reference under interleaved homes")
	for _, n := range []int{4, 8, 16, 32} {
		cfg := dirsim.POPS(300_000)
		cfg.CPUs = n
		gen, err := dirsim.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		eng, err := dirsim.NewNUMA(dirsim.NUMAConfig{Nodes: n})
		if err != nil {
			log.Fatal(err)
		}
		st, err := dirsim.RunNUMA(gen, eng, dirsim.NUMAOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d nodes: %.4f hops/ref, %.0f%% local homes\n",
			n, st.CriticalHopsPerRef(), st.LocalHomeFraction()*100)
	}
}
