// Custom traces: drive the simulator with a hand-built reference stream
// instead of a generated workload.
//
// The trace API lets a user replay any access pattern — here a classic
// producer-consumer hand-off and a false-sharing pattern — and inspect the
// per-event consequences under different protocols. The example also
// round-trips the trace through the binary codec, which is how externally
// captured traces would enter the simulator.
package main

import (
	"bytes"
	"fmt"
	"log"

	"dirsim"
)

func main() {
	log.SetFlags(0)

	// Producer-consumer: CPU 0 writes a buffer of 4 blocks, CPU 1 reads
	// it, repeatedly. Under an invalidation protocol each hand-off is a
	// dirty miss; under Dragon the consumer's copy is updated in place.
	var tr dirsim.Trace
	buffer := func(i int) uint64 { return uint64(0x1000 + i*dirsim.DefaultBlockBytes) }
	for round := 0; round < 100; round++ {
		for i := 0; i < 4; i++ {
			tr = append(tr, dirsim.Ref{CPU: 0, PID: 1, Kind: dirsim.Write, Addr: buffer(i)})
		}
		for i := 0; i < 4; i++ {
			tr = append(tr, dirsim.Ref{CPU: 1, PID: 2, Kind: dirsim.Read, Addr: buffer(i)})
		}
	}

	// False sharing: two CPUs write disjoint words that live in the same
	// 16-byte block. The protocols cannot tell the difference.
	for round := 0; round < 100; round++ {
		tr = append(tr, dirsim.Ref{CPU: 2, PID: 3, Kind: dirsim.Write, Addr: 0x9000})
		tr = append(tr, dirsim.Ref{CPU: 3, PID: 4, Kind: dirsim.Write, Addr: 0x9008})
	}

	// Round-trip through the binary codec, as an external trace would.
	var buf bytes.Buffer
	w := dirsim.NewBinaryTraceWriter(&buf)
	for _, r := range tr {
		if err := w.Append(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d refs, %d bytes encoded\n\n", len(tr), buf.Len())

	results, err := dirsim.RunSchemes(dirsim.NewBinaryTraceReader(&buf),
		[]string{"dir0b", "dirnnb", "dragon"},
		dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	pip := dirsim.PipelinedBus()
	for _, r := range results {
		st := r.Stats
		fmt.Printf("%-8s cycles/ref %.4f  write-backs %d  invalidations %d  updates %d\n",
			r.Scheme, r.CyclesPerRef(pip),
			st.Ops[dirsim.OpWriteBack],
			st.DirectedInvals+st.BroadcastInvals,
			st.Events[dirsim.EvWriteHitUpdate])
	}

	fmt.Println("\nper-scheme accounting check (frequency path = message path):")
	for _, r := range results {
		if err := dirsim.VerifyAccounting(r); err != nil {
			fmt.Printf("%-8s %v\n", r.Scheme, err)
		} else {
			fmt.Printf("%-8s ok\n", r.Scheme)
		}
	}
}
