// Lock contention: the Section 5.2 experiment as a parameter study.
//
// Test-and-test-and-set spin locks are benign under multiple-copy schemes
// (the spinning reads hit in every waiter's cache) but devastating under
// Dir1NB, where the lock block ping-pongs between the spinners' caches.
// This example sweeps the lock-contention level of a synthetic workload
// and shows Dir1NB's bus traffic exploding while Dir0B's barely moves; it
// then repeats the paper's check of filtering the spin reads out of the
// trace.
package main

import (
	"fmt"
	"log"

	"dirsim"
)

func workload(attemptRate float64) dirsim.WorkloadConfig {
	cfg := dirsim.POPS(400_000)
	cfg.Name = fmt.Sprintf("locks@%.3f", attemptRate)
	cfg.LockAttemptRate = attemptRate
	return cfg
}

func cyclesPerRef(rd dirsim.TraceReader, scheme string) float64 {
	results, err := dirsim.RunSchemes(rd, []string{scheme},
		dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	return results[0].CyclesPerRef(dirsim.PipelinedBus())
}

func main() {
	log.SetFlags(0)

	fmt.Println("pipelined bus cycles per reference vs lock contention")
	fmt.Printf("%-12s  %10s  %10s  %8s\n", "attempt rate", "Dir1NB", "Dir0B", "ratio")
	for _, rate := range []float64{0, 0.002, 0.005, 0.01, 0.02} {
		cfg := workload(rate)
		gen1, err := dirsim.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		gen2, err := dirsim.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		d1 := cyclesPerRef(gen1, "dir1nb")
		d0 := cyclesPerRef(gen2, "dir0b")
		fmt.Printf("%-12.3f  %10.4f  %10.4f  %8.2f\n", rate, d1, d0, d1/d0)
	}

	// The paper's own check: excluding the lock-test reads from the trace
	// recovers most of Dir1NB's performance, while Dir0B is unaffected.
	fmt.Println("\nexcluding spin-lock test reads (Section 5.2)")
	cfg := workload(0.01)
	for _, scheme := range []string{"dir1nb", "dir0b"} {
		full, err := dirsim.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		filtered, err := dirsim.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		with := cyclesPerRef(full, scheme)
		without := cyclesPerRef(dirsim.DropLockSpins(filtered), scheme)
		fmt.Printf("%-8s  with locks %.4f  without %.4f  (improvement %.2fx)\n",
			scheme, with, without, with/without)
	}
}
