// Bus contention: refining the paper's closing estimate.
//
// Section 5 ends with a back-of-envelope bound — a 10-MIPS processor uses a
// bus cycle every 15 instructions, so a 100 ns bus supports at most ~15
// processors — and immediately flags it as optimistic because bus
// contention is ignored. This example measures each scheme's bus demand
// with the simulator, feeds it into the closed queueing model of the shared
// bus, and prints how many *effective* processors the bus is really worth
// as the machine grows, compared with the naive bound.
package main

import (
	"fmt"
	"log"

	"dirsim"
)

func main() {
	log.SetFlags(0)

	gen, err := dirsim.NewGenerator(dirsim.POPS(500_000))
	if err != nil {
		log.Fatal(err)
	}
	results, err := dirsim.RunSchemes(gen,
		[]string{"dir1nb", "wti", "dir0b", "dragon"},
		dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
	if err != nil {
		log.Fatal(err)
	}

	pip := dirsim.PipelinedBus()
	// A 10-MIPS processor on a 100 ns bus: one instruction — two
	// references — per bus cycle, i.e. 0.5 processor bus-cycles per
	// reference when it never waits.
	const procCyclesPerRef = 0.5

	fmt.Println("effective processors on one shared bus (POPS workload)")
	fmt.Printf("%-8s  %11s  %7s  %7s  %7s  %10s\n",
		"scheme", "naive bound", "N=8", "N=16", "N=32", "knee(50%)")
	for _, r := range results {
		model, err := r.Contention(pip, procCyclesPerRef)
		if err != nil {
			log.Fatal(err)
		}
		naive := dirsim.EffectiveProcessors(r.CyclesPerRef(pip), 2, 10, 100)
		ms, err := model.MVA(32)
		if err != nil {
			log.Fatal(err)
		}
		knee, err := model.Knee(128, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %11.1f  %7.1f  %7.1f  %7.1f  %10d\n",
			r.Scheme, naive,
			ms[7].EffectiveProcessors, ms[15].EffectiveProcessors,
			ms[31].EffectiveProcessors, knee)
	}

	// Cross-check the analytic MVA against a discrete-event simulation
	// of the same bus for the best scheme.
	best := results[3]
	model, err := best.Contention(pip, procCyclesPerRef)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: MVA vs discrete-event simulation (bus utilization)\n", best.Scheme)
	ms, err := model.MVA(32)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{4, 16, 32} {
		simr, err := model.Simulate(n, 2_000_000, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  N=%-3d  MVA %.3f   sim %.3f\n", n, ms[n-1].BusUtilization, simr.BusUtilization)
	}
}
