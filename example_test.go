package dirsim_test

import (
	"fmt"
	"log"

	"dirsim"
)

// The basic workflow: generate a workload, run the paper's four schemes in
// one pass, and price the runs under the pipelined bus.
func Example() {
	gen, err := dirsim.NewGenerator(dirsim.PERO(100_000))
	if err != nil {
		log.Fatal(err)
	}
	engines, err := dirsim.Section3Engines(dirsim.EngineConfig{Caches: 4})
	if err != nil {
		log.Fatal(err)
	}
	results, err := dirsim.Run(gen, engines, dirsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Dragon's update protocol is the cheapest on every workload; the
	// single-copy Dir1NB is by far the most expensive.
	m := dirsim.PipelinedBus()
	fmt.Println(results[0].Scheme, "costs more than",
		results[2].Scheme, ":", results[0].CyclesPerRef(m) > results[2].CyclesPerRef(m))
	fmt.Println(results[3].Scheme, "is cheapest:",
		results[3].CyclesPerRef(m) < results[2].CyclesPerRef(m))
	// Output:
	// Dir1NB costs more than Dir0B : true
	// Dragon is cheapest: true
}

// Hand-built traces drive the engines directly; Access classifications and
// operation counts are inspectable per scheme.
func ExampleRunSchemes() {
	tr := dirsim.Trace{
		{CPU: 0, Kind: dirsim.Read, Addr: 0x10},  // cold (excluded)
		{CPU: 1, Kind: dirsim.Read, Addr: 0x10},  // read sharing
		{CPU: 0, Kind: dirsim.Write, Addr: 0x10}, // invalidates cache 1
		{CPU: 1, Kind: dirsim.Read, Addr: 0x10},  // dirty miss
	}
	results, err := dirsim.RunSchemes(dirsim.NewTraceReader(tr),
		[]string{"dirnnb"}, dirsim.EngineConfig{Caches: 2}, dirsim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	st := results[0].Stats
	fmt.Println("read misses:", st.Events.ReadMisses())
	fmt.Println("directed invalidations:", st.DirectedInvals)
	fmt.Println("write-backs:", st.Ops[dirsim.OpWriteBack])
	// Output:
	// read misses: 2
	// directed invalidations: 1
	// write-backs: 1
}

// The Table 1 timings derive both Table 2 cost models.
func ExampleBusTiming() {
	t := dirsim.DefaultBusTiming()
	pip, np := t.Pipelined(), t.NonPipelined()
	fmt.Println("pipelined mem access:", pip.Cost[dirsim.OpMemRead])
	fmt.Println("non-pipelined mem access:", np.Cost[dirsim.OpMemRead])
	// Output:
	// pipelined mem access: 5
	// non-pipelined mem access: 7
}

// The Section 5 estimate, refined by the contention model: effective
// processors never exceed the naive bound.
func ExampleEffectiveProcessors() {
	// The paper's numbers: ~0.03 cycles/ref, 2 refs/instruction, 10 MIPS
	// processors, a 100 ns bus.
	n := dirsim.EffectiveProcessors(1.0/30, 2, 10, 100)
	fmt.Printf("naive bound: %.0f processors\n", n)
	// Output:
	// naive bound: 15 processors
}

// Directory storage organisations answer "whom do I invalidate" with very
// different bit budgets.
func ExampleStorageParams() {
	p := dirsim.DefaultStorageParams(64)
	full := dirsim.NewFullMapStore(64)
	coded, err := dirsim.NewCodedSetStore(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("full map bits/block:", full.StorageBits(p)/p.MemoryBlocks)
	fmt.Println("coded set bits/block:", coded.StorageBits(p)/p.MemoryBlocks)
	// Output:
	// full map bits/block: 65
	// coded set bits/block: 13
}

// The Section 7 comparison: distributing memory and directory keeps
// processor efficiency flat while a central bus collapses.
func ExampleScalingCurve() {
	central, distributed, err := dirsim.ScalingCurve(20, 4, 2, []int{64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("central collapses:", central[0] < 0.25)
	fmt.Println("distributed holds:", distributed[0] > 0.6)
	// Output:
	// central collapses: true
	// distributed holds: true
}
