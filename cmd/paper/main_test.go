package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dirsim/internal/runner"
)

// TestRunRegeneratesEveryArtifact drives the full reproduction at a small
// trace length and checks every table, figure, section study, extension
// and the accounting cross-check appear in the output.
func TestRunRegeneratesEveryArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction skipped in -short mode")
	}
	var out strings.Builder
	if err := run(context.Background(), &out, options{refs: 60_000, cpus: 4, parallel: 1}); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Table 1:", "Table 2:", "Table 3:", "Table 4:", "Table 5:",
		"Figure 1:", "Figure 2:", "Figure 3:", "Figure 4:", "Figure 5:",
		"Section 5: Dir0B directory/memory bandwidth ratio",
		"Section 5: effective processors",
		"Section 5.1:", "Section 5.2:",
		"Section 6: directory alternatives",
		"Section 6: Dir1B cycles/ref as broadcast cost b varies",
		"Section 7: processor efficiency",
		"Ablation: directory storage",
		"Extension: the wider snoopy/directory protocol zoo",
		"Section 2/6: sharing profile",
		"Footnote 5: Figure 1's claim on larger machines",
		"Section 7: message-level distributed directory",
		"Section 5.1: average memory access time",
		"Ablation: DirnNB on POPS vs sparse-directory capacity",
		"Ablation: Dir0B on POPS vs cache size",
		"POPS working set",
		"LEGEND",
		"MOESI", "ReadBroadcast", "Competitive4",
		"Extension: bus contention",
		"Extension: test-and-test-and-set vs test-and-set",
		"Appendix: POPS across 5 seeds",
		"accounting cross-check: events × per-event costs == measured operations ✓",
		"POPS", "THOR", "PERO",
		"Dir1NB", "WTI", "Dir0B", "Dragon", "Berkeley",
		"MESI", "WriteOnce", "Firefly",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "failed:") || strings.Contains(s, "skipped:") {
		t.Errorf("clean run printed a failure/skip note:\n%s", s)
	}
}

func TestRunRejectsBadCPUCount(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), &out, options{refs: 1000, cpus: 0, parallel: 1}); err == nil {
		t.Fatal("cpus=0 accepted")
	}
}

// The parallel pool must regenerate byte-identical artifacts, and the
// progress stream must land on its writer, not in the report.
func TestRunParallelMatchesSequentialWithProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction skipped in -short mode")
	}
	var seq strings.Builder
	if err := run(context.Background(), &seq, options{refs: 20_000, cpus: 4, parallel: 1}); err != nil {
		t.Fatal(err)
	}
	var par, prog strings.Builder
	if err := run(context.Background(), &par, options{refs: 20_000, cpus: 4, parallel: 4, progressW: &prog}); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Error("parallel reproduction differs from sequential")
	}
	if !strings.Contains(prog.String(), "jobs") {
		t.Errorf("progress output missing: %q", prog.String())
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	if err := run(ctx, &out, options{refs: 50_000, cpus: 4, parallel: 1}); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}

// A panicking section must not take the report down: the rest renders,
// dependent sections skip themselves, the failure lands in the manifest,
// and run reports degradation instead of dying.
func TestRunSurvivesFailedSection(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction skipped in -short mode")
	}
	manifest := filepath.Join(t.TempDir(), "failures.json")
	var out strings.Builder
	err := run(context.Background(), &out, options{
		refs: 20_000, cpus: 4, parallel: 2,
		failSection: "core-runs", manifest: manifest,
	})
	if !errors.Is(err, errDegraded) {
		t.Fatalf("want errDegraded, got %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "[core-runs failed: panic: injected section failure (core-runs)]") {
		t.Errorf("missing failure note in report:\n%s", s)
	}
	// Dependents of the core runs skip; independent sections still render.
	for _, want := range []string{
		"[section5 skipped:", "[section52 skipped:", "[accounting skipped:",
		"Section 6: directory alternatives",
		"Extension: the wider snoopy/directory protocol zoo",
		"Appendix: POPS across 5 seeds",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var man runner.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if man.Command != "paper" || man.Failed != 1 || len(man.Failures) != 1 {
		t.Errorf("manifest = %+v, want 1 paper failure", man)
	}
	if man.Failures[0].Label != "core-runs" {
		t.Errorf("failure label = %q, want core-runs", man.Failures[0].Label)
	}
}
