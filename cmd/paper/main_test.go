package main

import (
	"context"
	"strings"
	"testing"
)

// TestRunRegeneratesEveryArtifact drives the full reproduction at a small
// trace length and checks every table, figure, section study, extension
// and the accounting cross-check appear in the output.
func TestRunRegeneratesEveryArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction skipped in -short mode")
	}
	var out strings.Builder
	if err := run(context.Background(), &out, 60_000, 4, 1, nil); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Table 1:", "Table 2:", "Table 3:", "Table 4:", "Table 5:",
		"Figure 1:", "Figure 2:", "Figure 3:", "Figure 4:", "Figure 5:",
		"Section 5: Dir0B directory/memory bandwidth ratio",
		"Section 5: effective processors",
		"Section 5.1:", "Section 5.2:",
		"Section 6: directory alternatives",
		"Section 6: Dir1B cycles/ref as broadcast cost b varies",
		"Section 7: processor efficiency",
		"Ablation: directory storage",
		"Extension: the wider snoopy/directory protocol zoo",
		"Section 2/6: sharing profile",
		"Footnote 5: Figure 1's claim on larger machines",
		"Section 7: message-level distributed directory",
		"Section 5.1: average memory access time",
		"Ablation: DirnNB on POPS vs sparse-directory capacity",
		"Ablation: Dir0B on POPS vs cache size",
		"POPS working set",
		"LEGEND",
		"MOESI", "ReadBroadcast", "Competitive4",
		"Extension: bus contention",
		"Extension: test-and-test-and-set vs test-and-set",
		"Appendix: POPS across 5 seeds",
		"accounting cross-check: events × per-event costs == measured operations ✓",
		"POPS", "THOR", "PERO",
		"Dir1NB", "WTI", "Dir0B", "Dragon", "Berkeley",
		"MESI", "WriteOnce", "Firefly",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsBadCPUCount(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), &out, 1000, 0, 1, nil); err == nil {
		t.Fatal("cpus=0 accepted")
	}
}

// The parallel pool must regenerate byte-identical artifacts, and the
// progress stream must land on its writer, not in the report.
func TestRunParallelMatchesSequentialWithProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction skipped in -short mode")
	}
	var seq strings.Builder
	if err := run(context.Background(), &seq, 20_000, 4, 1, nil); err != nil {
		t.Fatal(err)
	}
	var par, prog strings.Builder
	if err := run(context.Background(), &par, 20_000, 4, 4, &prog); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Error("parallel reproduction differs from sequential")
	}
	if !strings.Contains(prog.String(), "jobs") {
		t.Errorf("progress output missing: %q", prog.String())
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	if err := run(ctx, &out, 50_000, 4, 1, nil); err == nil {
		t.Fatal("cancelled run succeeded")
	}
}
