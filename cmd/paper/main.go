// Command paper regenerates every table and figure of the paper's
// evaluation in one run: Tables 1-5, Figures 1-5, the Section 5.1 fixed-
// overhead study, the Section 5.2 spin-lock study, and the Section 6
// scalability alternatives, using the three synthetic workloads that stand
// in for the POPS/THOR/PERO ATUM traces.
//
// The report is assembled from independent sections run under a failure
// boundary: a section that errors or panics prints a bracketed note in
// its place and lands in the failure manifest, sections that depend on
// its outputs skip themselves, and everything else still renders. A
// degraded report exits nonzero.
//
// Usage:
//
//	paper [-refs N] [-cpus N] [-parallel N] [-progress] [-timeout D]
//	paper -o report.txt -manifest failures.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"dirsim/internal/atomicio"
	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/directory"
	"dirsim/internal/flight"
	"dirsim/internal/numa"
	"dirsim/internal/obs"
	"dirsim/internal/queueing"
	"dirsim/internal/report"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/spec"
	"dirsim/internal/study"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paper: ")
	refs := flag.Int("refs", 1_000_000, "references per synthetic trace")
	cpus := flag.Int("cpus", 4, "number of processors")
	parallel := flag.Int("parallel", 1, "concurrent simulation jobs (1 = sequential)")
	timeout := flag.Duration("timeout", 0, "abort the reproduction after this long (0 = no limit)")
	retries := flag.Int("retries", 2, "extra attempts for jobs failing with transient errors")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "backoff before the first retry (doubles per attempt, jittered)")
	out := flag.String("o", "-", "output report file (written atomically), or - for stdout")
	manifest := flag.String("manifest", "", "write a JSON failure manifest to this file")
	remoteURL := flag.String("remote", "", "run simulation cells on a dirsimd daemon at this base URL instead of locally")
	failSection := flag.String("fail-section", "", "inject a panic into the named section (fault-injection testing)")
	progress := flag.Bool("progress", false, "report job and throughput counts on stderr")
	pprofFile := flag.String("pprof", "", "write a CPU profile to this file")
	traceOut := flag.String("trace-out", "", "write a flight trace of every simulation job here (.json = Chrome trace, .ndjson = one event per line)")
	traceSample := flag.Int("trace-sample", flight.DefaultSample, "with -trace-out, record every Nth reference's protocol events (0 = spans only)")
	spans := flag.Bool("spans", false, "with -trace-out, also record run-phase spans")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *pprofFile != "" {
		pf, err := atomicio.Create(*pprofFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Abort()
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := pf.Commit(); err != nil {
				log.Fatal(err)
			}
		}()
	}
	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}
	o := options{
		refs: *refs, cpus: *cpus, parallel: *parallel,
		retries: *retries, retryBase: *retryBase, sleep: time.Sleep,
		manifest: *manifest, failSection: *failSection,
		remote:    *remoteURL,
		progressW: progressW,
		traceOut:  *traceOut, traceSample: *traceSample, spans: *spans,
	}

	var w io.Writer = os.Stdout
	var af *atomicio.File
	if *out != "-" {
		f, err := atomicio.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		af = f
		w = f
	}
	err := run(ctx, w, o)
	switch {
	case err == nil:
		if af != nil {
			if cerr := af.Commit(); cerr != nil {
				log.Fatal(cerr)
			}
		}
	case errors.Is(err, errDegraded):
		// A degraded report is still a report: commit it, then exit
		// nonzero.
		if af != nil {
			if cerr := af.Commit(); cerr != nil {
				log.Fatal(cerr)
			}
		}
		log.Print(err)
		os.Exit(1)
	default:
		if af != nil {
			af.Abort()
		}
		log.Fatal(err)
	}
}

// errDegraded marks a report that rendered with failed sections.
var errDegraded = errors.New("degraded report")

// options collects the command's flags.
type options struct {
	refs, cpus, parallel int
	retries              int
	retryBase            time.Duration
	sleep                func(time.Duration)
	manifest             string
	failSection          string
	remote               string
	progressW            io.Writer

	traceOut    string
	traceSample int
	spans       bool
}

// section3Schemes are the head-to-head protocols, in the paper's column
// order, plus the Berkeley estimate used in the Table 5 discussion.
var section3Schemes = []string{"dir1nb", "wti", "dir0b", "dragon"}

// errPrereq marks a section skipped because an earlier section it feeds
// from failed; skips are noted in the report but are not failures
// themselves — the manifest records only the root cause.
var errPrereq = errors.New("prerequisite section failed")

// sections runs the report's blocks in order, containing each one's
// failure: a panicking or erroring section becomes a bracketed note in
// the report and a manifest entry, and the remaining sections still run.
// Context cancellation is fatal and stops the remaining sections.
type sections struct {
	ctx   context.Context
	w     io.Writer
	man   *runner.Manifest
	brk   string // section name forced to panic (fault injection)
	fatal error
	n     int
}

// do runs one named section under the failure boundary.
func (s *sections) do(name string, f func() error) {
	idx := s.n
	s.n++
	if s.fatal != nil {
		return
	}
	if s.ctx.Err() != nil {
		s.fatal = context.Cause(s.ctx)
		return
	}
	err := func() (err error) {
		defer func() {
			if v := recover(); v != nil {
				err = &runner.PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		if s.brk == name {
			panic(fmt.Sprintf("injected section failure (%s)", name))
		}
		return f()
	}()
	switch {
	case err == nil:
	case errors.Is(err, errPrereq):
		fmt.Fprintf(s.w, "[%s skipped: %v]\n\n", name, err)
	case s.ctx.Err() != nil:
		s.fatal = err
	default:
		s.man.Record(idx, name, err)
		fmt.Fprintf(s.w, "[%s failed: %v]\n\n", name, err)
	}
}

// combineAcross merges per-preset results scheme by scheme — the paper's
// reference-weighted average "across the three traces".
func combineAcross(perTrace [][]sim.Result) ([]sim.Result, error) {
	if len(perTrace) == 0 {
		return nil, nil
	}
	combined := make([]sim.Result, len(perTrace[0]))
	for si := range combined {
		group := make([]sim.Result, len(perTrace))
		for ti := range perTrace {
			group[ti] = perTrace[ti][si]
		}
		c, err := sim.Combine(group)
		if err != nil {
			return nil, err
		}
		combined[si] = c
	}
	return combined, nil
}

func run(ctx context.Context, w io.Writer, o options) error {
	refs, cpus := o.refs, o.cpus
	timing := bus.DefaultTiming()
	pip, np := timing.Pipelined(), timing.NonPipelined()
	cfg := coherence.Config{Caches: cpus}
	if cpus < 1 {
		return fmt.Errorf("cpus must be positive")
	}
	presets := tracegen.Presets(refs)
	names := make([]string, len(presets))
	for i, p := range presets {
		names[i] = p.Name
	}

	// All experiment fan-out goes through one runner configuration; with
	// progress enabled the pool reports on progressW at batch granularity.
	ropts := runner.Options{
		Workers: o.parallel,
		Retry:   runner.RetryPolicy{Max: o.retries + 1, Base: o.retryBase, Seed: 1},
		Sleep:   o.sleep,
	}
	if o.progressW != nil {
		m := obs.NewMetrics()
		start := time.Now()
		th := obs.NewThrottle(200*time.Millisecond, func() int64 { return time.Now().UnixNano() })
		ropts.Metrics = m
		ropts.Progress = func() {
			if th.Ready() {
				s := m.Snapshot()
				fmt.Fprintf(o.progressW, "\rjobs %d/%d  %d refs (%.0f refs/s) ",
					s.JobsDone, s.JobsTotal, s.Refs, s.RefsPerSec(time.Since(start)))
			}
		}
		defer fmt.Fprintln(o.progressW)
	}

	// Every cell-shaped section executes through this seam: locally on
	// the runner pool, or on a dirsimd daemon with -remote.
	var sink *traceSink
	if o.traceOut != "" {
		if o.remote != "" {
			return fmt.Errorf("-remote cannot be combined with -trace-out: run the daemon with -trace-sample and fetch /v1/jobs/{id}/trace instead")
		}
		sink = &traceSink{sample: o.traceSample, spans: o.spans}
	}
	exec := localExec(ropts, sink)
	if o.remote != "" {
		exec = remoteExec(o.remote, o.parallel)
	}

	fmt.Fprintf(w, "Reproduction of: An Evaluation of Directory Schemes for Cache Coherence\n")
	fmt.Fprintf(w, "Agarwal, Simoni, Hennessy, Horowitz (ISCA 1988)\n")
	fmt.Fprintf(w, "Synthetic workloads: %d refs each, %d CPUs, %d-byte blocks\n\n",
		refs, cpus, trace.DefaultBlockBytes)

	fmt.Fprintln(w, report.Table1(timing))
	fmt.Fprintln(w, report.Table2(timing))

	s := &sections{ctx: ctx, w: w, man: runner.NewManifest("paper", 0), brk: o.failSection}

	// Table 3: trace characteristics.
	s.do("table3", func() error {
		var stats []trace.Stats
		for _, p := range presets {
			g, err := tracegen.New(p)
			if err != nil {
				return err
			}
			st, err := trace.CollectStats(g, trace.DefaultBlockBytes)
			if err != nil {
				return err
			}
			stats = append(stats, st)
		}
		fmt.Fprintln(w, report.Table3(names, stats))
		return nil
	})

	// One lockstep run per trace over the Section 3 schemes + Berkeley,
	// fanned out across presets on the runner pool. Nearly every later
	// section reads these results, so its failure cascades as skips.
	var perTrace [][]sim.Result
	var combined, core []sim.Result
	var dir0b sim.Result
	s.do("core-runs", func() error {
		var err error
		perTrace, err = exec(ctx, presetCells(presets, "",
			append(append([]string{}, section3Schemes...), "berkeley"), cfg, spec.Sim{}))
		if err != nil {
			return err
		}
		combined, err = combineAcross(perTrace)
		if err != nil {
			return err
		}
		core = combined[:len(section3Schemes)] // without Berkeley
		dir0b = combined[2]

		fmt.Fprintln(w, report.Table4(core))
		fmt.Fprintln(w, report.Table4Legend())
		// Figure 1 uses the multiple-copy state-change model; Dir0B's
		// histogram is the canonical one (WTI's is identical).
		fmt.Fprintln(w, report.Figure1(combined[2]))
		fmt.Fprintln(w, report.Figure2(core, pip, np))
		coreByTrace := make([][]sim.Result, len(perTrace))
		for ti := range perTrace {
			coreByTrace[ti] = perTrace[ti][:len(section3Schemes)]
		}
		fmt.Fprintln(w, report.Figure3(names, coreByTrace, pip, np))
		fmt.Fprintln(w, report.Table5(combined, pip))
		fmt.Fprintln(w, report.Figure4(core, pip))
		fmt.Fprintln(w, report.Figure5(core, pip))
		return nil
	})
	needCore := func() error {
		if combined == nil {
			return fmt.Errorf("%w: core-runs", errPrereq)
		}
		return nil
	}

	// Section 5: directory vs memory bandwidth, effective processors,
	// fixed per-transaction overhead, and the latency view.
	s.do("section5", func() error {
		if err := needCore(); err != nil {
			return err
		}
		fmt.Fprintf(w, "Section 5: Dir0B directory/memory bandwidth ratio: %.2f\n", dir0b.DirToMemBandwidthRatio())
		best := core[len(core)-1].CyclesPerRef(pip) // Dragon
		fmt.Fprintf(w, "Section 5: effective processors at 10 MIPS, 100 ns bus, best scheme: %.1f\n\n",
			bus.EffectiveProcessors(best, 2, 10, 100))

		// Section 5.1: fixed per-transaction overhead.
		fmt.Fprintln(w, report.Section51([]sim.Result{dir0b, core[3]}, pip, []float64{0, 1, 2, 4}))

		// Section 5.1's preferred metric: average memory access time as
		// seen by the processor (hit = 1 cycle, fixed per-transaction
		// overhead = 1 cycle).
		lat := report.NewTable("Section 5.1: average memory access time (cycles/ref; hit=1, overhead=1)",
			"Scheme", "latency", "bus cycles/ref")
		for _, r := range core {
			lat.AddRow(r.Scheme,
				fmt.Sprintf("%.4f", r.AvgAccessTime(pip.Latency(1, 1))),
				fmt.Sprintf("%.4f", r.CyclesPerRef(pip)))
		}
		fmt.Fprintln(w, lat.Render())
		return nil
	})

	// Section 5.2: spin locks. Rerun Dir1NB and Dir0B with lock-test
	// reads filtered out.
	s.do("section52", func() error {
		if err := needCore(); err != nil {
			return err
		}
		with := []sim.Result{combined[0], dir0b}
		withoutGroups, err := exec(ctx, presetCells(presets, "droplockspins",
			[]string{"dir1nb", "dir0b"}, cfg, spec.Sim{}))
		if err != nil {
			return err
		}
		without, err := combineAcross(withoutGroups)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report.Section52(with, without, pip))
		return nil
	})

	// Section 6: scalability alternatives, all in one lockstep run per
	// preset, plus the Dir1B broadcast-cost sweep over the same results.
	s.do("section6", func() error {
		sec6Schemes := []string{"dir0b", "dirnnb", "dir1b", "dir2b", "dir2nb", "dir4nb", "codedset"}
		sec6Groups, err := exec(ctx, presetCells(presets, "", sec6Schemes, cfg, spec.Sim{}))
		if err != nil {
			return err
		}
		sec6, err := combineAcross(sec6Groups)
		if err != nil {
			return err
		}
		tb := report.NewTable("Section 6: directory alternatives (pipelined bus)",
			"Scheme", "cycles/ref", "miss rate %", "bcast/1k refs", "wasted inv/1k refs", "ptr evict/1k refs")
		for _, r := range sec6 {
			per1k := func(v uint64) string {
				return fmt.Sprintf("%.2f", float64(v)/float64(r.Stats.Refs)*1000)
			}
			tb.AddRow(r.Scheme,
				fmt.Sprintf("%.4f", r.CyclesPerRef(pip)),
				fmt.Sprintf("%.2f", r.Stats.Events.DataMissRate()*100),
				per1k(r.Stats.BroadcastInvals),
				per1k(r.Stats.WastedInvals),
				per1k(r.Stats.PointerEvictions))
		}
		fmt.Fprintln(w, tb.Render())

		// Section 6: Dir1B broadcast-cost sweep (the paper's 0.0485 +
		// 0.0006·b linear model, regenerated by pricing the same run under
		// varying b).
		dir1b := sec6[2]
		sweep := report.NewTable("Section 6: Dir1B cycles/ref as broadcast cost b varies",
			"b", "cycles/ref")
		for _, b := range []float64{1, 2, 4, 8, 16, 32} {
			sweep.AddRow(fmt.Sprintf("%.0f", b),
				fmt.Sprintf("%.4f", dir1b.CyclesPerRef(pip.WithBroadcastCost(b))))
		}
		fmt.Fprintln(w, sweep.Render())
		return nil
	})

	// Ablation: directory storage overhead per organisation.
	s.do("storage", func() error {
		storage := report.NewTable("Ablation: directory storage (bits per memory block equivalents)",
			"Organisation", "n=4", "n=16", "n=64", "n=256")
		type org struct {
			name string
			mk   func(n int) (directory.Store, error)
		}
		orgs := []org{
			{"full-map (DirnNB)", func(n int) (directory.Store, error) { return directory.NewFullMap(n), nil }},
			{"Tang duplicate", func(n int) (directory.Store, error) { return directory.NewTang(n), nil }},
			{"two-bit (Dir0B)", func(n int) (directory.Store, error) { return directory.NewTwoBit(), nil }},
			{"Dir1B pointers", func(n int) (directory.Store, error) {
				return directory.NewLimitedPointer(1, n, true)
			}},
			{"Dir4B pointers", func(n int) (directory.Store, error) {
				return directory.NewLimitedPointer(4, n, true)
			}},
			{"coded-set", func(n int) (directory.Store, error) {
				return directory.NewCodedSet(n)
			}},
		}
		for _, o := range orgs {
			cells := []string{o.name}
			for _, n := range []int{4, 16, 64, 256} {
				p := directory.DefaultStorageParams(n)
				st, err := o.mk(n)
				if err != nil {
					return err
				}
				bits := st.StorageBits(p)
				cells = append(cells, fmt.Sprintf("%.1f", float64(bits)/float64(p.MemoryBlocks)))
			}
			storage.AddRow(cells...)
		}
		fmt.Fprintln(w, storage.Render())
		return nil
	})

	// Extension: the full protocol zoo, including the referenced snoopy
	// protocols (Goodman write-once, Illinois MESI, Firefly).
	s.do("zoo", func() error {
		zooSchemes := []string{"wti", "readbroadcast", "writeonce", "mesi", "moesi", "dragon", "firefly", "competitive4", "dir0b", "dirnnb"}
		zooGroups, err := exec(ctx, presetCells(presets, "", zooSchemes, cfg, spec.Sim{}))
		if err != nil {
			return err
		}
		zooCombined, err := combineAcross(zooGroups)
		if err != nil {
			return err
		}
		zoo := report.NewTable("Extension: the wider snoopy/directory protocol zoo (cycles/ref)",
			"Scheme", "pipelined", "non-pipelined")
		for _, c := range zooCombined {
			zoo.AddRow(c.Scheme,
				fmt.Sprintf("%.4f", c.CyclesPerRef(pip)),
				fmt.Sprintf("%.4f", c.CyclesPerRef(np)))
		}
		fmt.Fprintln(w, zoo.Render())
		return nil
	})

	// Extension: bus contention. The paper's effective-processor bound is
	// "optimistic … because we have not included the effects of bus
	// contention"; the closed queueing model supplies the refinement.
	// procCyclesPerRef = 0.5: a 10-MIPS processor on a 100 ns bus issues
	// one instruction (two references) per bus cycle.
	s.do("contention", func() error {
		if err := needCore(); err != nil {
			return err
		}
		cont := report.NewTable("Extension: bus contention (machine-repairman model, pipelined bus)",
			"Scheme", "naive bound", "eff procs @8", "eff procs @16", "eff procs @32", "knee(50%)")
		for _, r := range []sim.Result{dir0b, core[3]} {
			model, err := r.Contention(pip, 0.5)
			if err != nil {
				return err
			}
			ms, err := model.MVA(32)
			if err != nil {
				return err
			}
			knee, err := model.Knee(64, 0.5)
			if err != nil {
				return err
			}
			cont.AddRow(r.Scheme,
				fmt.Sprintf("%.1f", bus.EffectiveProcessors(r.CyclesPerRef(pip), 2, 10, 100)),
				fmt.Sprintf("%.1f", ms[7].EffectiveProcessors),
				fmt.Sprintf("%.1f", ms[15].EffectiveProcessors),
				fmt.Sprintf("%.1f", ms[31].EffectiveProcessors),
				fmt.Sprintf("%d", knee))
		}
		fmt.Fprintln(w, cont.Render())
		return nil
	})

	// Section 2's demanded measurement: "the dynamic numbers of caches
	// that contain a shared datum" — computed from the trace alone, with
	// no protocol model, plus the pointer-sufficiency view that justifies
	// small-i directories.
	s.do("sharing-profile", func() error {
		profTb := report.NewTable("Section 2/6: sharing profile (protocol-free, per trace)",
			"Trace", "shared blocks %", "writes fitting 1 ptr %", "2 ptrs %", "4 ptrs %")
		for _, p := range presets {
			g, err := tracegen.New(p)
			if err != nil {
				return err
			}
			prof, err := trace.Profile(g, trace.DefaultBlockBytes)
			if err != nil {
				return err
			}
			profTb.AddRow(p.Name,
				fmt.Sprintf("%.1f", prof.SharedBlockFraction()*100),
				fmt.Sprintf("%.1f", prof.PointerSufficiency(1)*100),
				fmt.Sprintf("%.1f", prof.PointerSufficiency(2)*100),
				fmt.Sprintf("%.1f", prof.PointerSufficiency(4)*100))
		}
		fmt.Fprintln(w, profTb.Render())
		return nil
	})

	// Footnote 5's open question: does the single-invalidation dominance
	// survive on machines larger than the traced four processors?
	s.do("footnote5", func() error {
		bigTb := report.NewTable("Footnote 5: Figure 1's claim on larger machines (POPS-like workloads)",
			"processors", "writes needing ≤1 inval %", "mean fan-out")
		bigSizes := []int{4, 8, 16, 32}
		bigCells := make([]spec.Cell, len(bigSizes))
		for i, n := range bigSizes {
			cfgBig := tracegen.POPS(refs)
			cfgBig.CPUs = n
			cfgBig.Locks = 1 + n/8
			bigCells[i] = spec.Cell{
				Trace:   cfgBig,
				Schemes: []string{"dir0b"},
				Machine: coherence.Config{Caches: n},
			}
		}
		bigRes, err := exec(ctx, bigCells)
		if err != nil {
			return err
		}
		for i, n := range bigSizes {
			h := &bigRes[i][0].Stats.InvalFanout
			bigTb.AddRow(fmt.Sprintf("%d", n),
				fmt.Sprintf("%.1f", h.CumulativeFraction(1)*100),
				fmt.Sprintf("%.2f", h.Mean()))
		}
		fmt.Fprintln(w, bigTb.Render())
		return nil
	})

	// Section 7: distributing memory and directory with the processors.
	// The model's think/service parameters come from the measured Dir0B
	// demand; the distributed machine adds a 2-cycle interconnect hop.
	s.do("section7-scaling", func() error {
		if err := needCore(); err != nil {
			return err
		}
		model, err := dir0b.Contention(pip, 0.5)
		if err != nil {
			return err
		}
		sizes := []int{2, 4, 8, 16, 32, 64}
		central, distributed, err := queueing.ScalingCurve(model.ThinkCycles, model.ServiceCycles, 2, sizes)
		if err != nil {
			return err
		}
		s7 := report.NewTable("Section 7: processor efficiency, central bus vs distributed directory (Dir0B demand)",
			"Processors", "central", "distributed")
		for i, n := range sizes {
			s7.AddRow(fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2f", central[i]),
				fmt.Sprintf("%.2f", distributed[i]))
		}
		fmt.Fprintln(w, s7.Render())
		return nil
	})

	// Section 7 at message level: the distributed full-map directory's
	// interconnect demand under both home-assignment policies (POPS).
	s.do("section7-numa", func() error {
		nTb := report.NewTable("Section 7: message-level distributed directory (POPS)",
			"home policy", "msgs/ref", "critical hops/ref", "local homes", "3-hop misses/1k refs")
		for _, policy := range []numa.HomePolicy{numa.Interleaved, numa.FirstTouch} {
			eng, err := numa.New(numa.Config{Nodes: cpus, Policy: policy})
			if err != nil {
				return err
			}
			g, err := tracegen.New(tracegen.POPS(refs))
			if err != nil {
				return err
			}
			st, err := numa.Run(ctx, g, eng, numa.Options{})
			if err != nil {
				return err
			}
			nTb.AddRow(policy.String(),
				fmt.Sprintf("%.4f", st.MessagesPerRef()),
				fmt.Sprintf("%.4f", st.CriticalHopsPerRef()),
				fmt.Sprintf("%.2f", st.LocalHomeFraction()),
				fmt.Sprintf("%.2f", float64(st.ThreeHopMisses)/float64(st.Refs)*1000))
		}
		fmt.Fprintln(w, nTb.Render())
		return nil
	})

	// Extension: spin primitive ablation — plain test-and-set turns every
	// spin probe into an invalidating write.
	s.do("spin-primitive", func() error {
		lockTb := report.NewTable("Extension: test-and-test-and-set vs test-and-set (POPS, cycles/ref)",
			"Scheme", "T&T&S", "T&S", "T&S penalty")
		tsCfg := tracegen.POPS(refs)
		tsCfg.LockKind = tracegen.TestAndSet
		lockSchemes := []string{"dir0b", "dragon"}
		// Cells alternate (T&T&S, T&S) per scheme: index 2i and 2i+1.
		var lockCells []spec.Cell
		for _, scheme := range lockSchemes {
			for _, genCfg := range []tracegen.Config{tracegen.POPS(refs), tsCfg} {
				lockCells = append(lockCells, spec.Cell{
					Trace:   genCfg,
					Schemes: []string{scheme},
					Machine: cfg,
				})
			}
		}
		lockRes, err := exec(ctx, lockCells)
		if err != nil {
			return err
		}
		for i := range lockSchemes {
			tts, ts := lockRes[2*i][0], lockRes[2*i+1][0]
			a, b := tts.CyclesPerRef(pip), ts.CyclesPerRef(pip)
			lockTb.AddRow(tts.Scheme,
				fmt.Sprintf("%.4f", a), fmt.Sprintf("%.4f", b), fmt.Sprintf("%.2fx", b/a))
		}
		fmt.Fprintln(w, lockTb.Render())
		return nil
	})

	// Ablation: sparse directories — a bounded directory entry cache
	// whose evictions invalidate the displaced block's copies. Directory
	// locality tracks cache locality, so a small fraction of entries
	// suffices. Size the capacities against the workload's working set.
	s.do("sparse-directory", func() error {
		wsGen, err := tracegen.New(tracegen.POPS(refs))
		if err != nil {
			return err
		}
		ws, err := trace.WorkingSets(wsGen, trace.DefaultBlockBytes, 100_000)
		if err != nil {
			return err
		}
		maxWS := 0
		for _, v := range ws {
			if v > maxWS {
				maxWS = v
			}
		}
		fmt.Fprintf(w, "POPS working set: max %d blocks per 100k data refs\n\n", maxWS)
		spTb := report.NewTable("Ablation: DirnNB on POPS vs sparse-directory capacity (cycles/ref)",
			"entries", "cycles/ref", "entry evictions/1k refs")
		sparseEntries := []int{256, 1024, 4096, 0}
		sparseCells := make([]spec.Cell, len(sparseEntries))
		for i, entries := range sparseEntries {
			sparseCells[i] = spec.Cell{
				Trace:   tracegen.POPS(refs),
				Schemes: []string{"dirnnb"},
				Machine: coherence.Config{Caches: cpus, DirEntries: entries},
			}
		}
		sparseRes, err := exec(ctx, sparseCells)
		if err != nil {
			return err
		}
		for i, entries := range sparseEntries {
			r := sparseRes[i][0]
			label := fmt.Sprintf("%d", entries)
			if entries == 0 {
				label = "memory-resident"
			}
			spTb.AddRow(label,
				fmt.Sprintf("%.4f", r.CyclesPerRef(pip)),
				fmt.Sprintf("%.2f", float64(r.Stats.DirEntryEvictions)/float64(r.Stats.Refs)*1000))
		}
		fmt.Fprintln(w, spTb.Render())
		return nil
	})

	// Ablation: finite cache sizes. The paper argues finite-cache costs
	// add to the sharing costs to first order; measure the addition
	// directly with a half-trace warm-up and cold misses included.
	s.do("finite-cache", func() error {
		finTb := report.NewTable("Ablation: Dir0B on POPS vs cache size (4-way, cycles/ref, warm measurement)",
			"cache blocks", "cycles/ref", "data miss rate %")
		finiteGeoms := []struct {
			label string
			sets  int
			ways  int
		}{
			{"256", 64, 4}, {"1024", 256, 4}, {"4096", 1024, 4}, {"infinite", 0, 0},
		}
		finiteCells := make([]spec.Cell, len(finiteGeoms))
		for i, geom := range finiteGeoms {
			finiteCells[i] = spec.Cell{
				Trace:   tracegen.POPS(refs),
				Schemes: []string{"dir0b"},
				Machine: coherence.Config{Caches: cpus, FiniteSets: geom.sets, FiniteWays: geom.ways},
				Sim:     spec.Sim{IncludeFirstRefCosts: true, WarmupRefs: refs / 2},
			}
		}
		finiteRes, err := exec(ctx, finiteCells)
		if err != nil {
			return err
		}
		for i, geom := range finiteGeoms {
			r := finiteRes[i][0]
			finTb.AddRow(geom.label,
				fmt.Sprintf("%.4f", r.CyclesPerRef(pip)),
				fmt.Sprintf("%.2f", r.Stats.Events.DataMissRate()*100))
		}
		fmt.Fprintln(w, finTb.Render())
		return nil
	})

	// Appendix: sampling error. The paper's numbers come from one trace
	// per application; replicating POPS across five seeds puts error bars
	// on Figure 2's column.
	s.do("seed-replication", func() error {
		seeds := study.Seeds(1, 5)
		sums, err := study.SeedSweep(ctx, tracegen.POPS(refs/2), seeds, section3Schemes,
			cfg, sim.Options{}, study.CyclesPerRef(pip))
		if err != nil {
			return err
		}
		errTb := report.NewTable("Appendix: POPS across 5 seeds (pipelined cycles/ref, mean ± 95% CI)",
			"Scheme", "mean", "±CI95", "stddev")
		for _, sm := range sums {
			errTb.AddRow(sm.Scheme,
				fmt.Sprintf("%.4f", sm.Mean),
				fmt.Sprintf("%.4f", sm.CI95),
				fmt.Sprintf("%.4f", sm.StdDev))
		}
		fmt.Fprintln(w, errTb.Render())
		if cmp, err := study.Compare(sums[2], sums[3]); err == nil {
			fmt.Fprintf(w, "paired Dir0B−Dragon difference: %.4f ± %.4f (significant: %v)\n\n",
				cmp.Diff, cmp.CI95, cmp.Significant())
		}
		return nil
	})

	// Cross-check: the frequency methodology reproduces the direct
	// operation accounting for the fixed-cost schemes.
	s.do("accounting", func() error {
		if err := needCore(); err != nil {
			return err
		}
		for _, r := range combined {
			if err := sim.VerifyAccounting(r); err != nil {
				return err
			}
		}
		fmt.Fprintln(w, "accounting cross-check: events × per-event costs == measured operations ✓")
		return nil
	})

	if s.fatal != nil {
		return s.fatal
	}
	s.man.Total = s.n
	if o.manifest != "" {
		if err := s.man.Write(o.manifest); err != nil {
			return err
		}
	}
	if sink != nil {
		if err := writeTrace(o.traceOut, sink.recorders()); err != nil {
			return err
		}
	}
	if s.man.Failed > 0 {
		return fmt.Errorf("%w: %d of %d sections failed", errDegraded, s.man.Failed, s.n)
	}
	return nil
}
