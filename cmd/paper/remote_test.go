package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"dirsim/internal/server"
)

// startDaemon brings up a real dirsimd service behind httptest.
func startDaemon(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{Workers: 4, Executors: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Drain(context.Background()); err != nil {
			t.Errorf("drain: %v", err)
		}
		cancel()
	})
	return ts.URL
}

// The report must be byte-identical whether its simulation cells run
// locally or on a daemon: remote stats rebuild through the same cost
// models, including the filtered section-5.2 rerun and the sim-option-
// carrying finite-cache cells.
func TestPaperRemoteMatchesLocal(t *testing.T) {
	o := options{refs: 20_000, cpus: 4, parallel: 2}
	var local strings.Builder
	if err := run(context.Background(), &local, o); err != nil {
		t.Fatal(err)
	}
	o.remote = startDaemon(t)
	var remote strings.Builder
	if err := run(context.Background(), &remote, o); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("remote report differs from local:\n--- local\n%s\n--- remote\n%s", local.String(), remote.String())
	}
}

// A dead daemon degrades the report — cell-shaped sections fail with the
// connection error, sections without simulations still render — instead
// of aborting the whole command.
func TestPaperRemoteDaemonUnreachable(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, options{
		refs: 5_000, cpus: 4, parallel: 1, remote: "http://127.0.0.1:1",
	})
	if err == nil || !strings.Contains(err.Error(), "degraded") {
		t.Fatalf("err = %v, want degraded report", err)
	}
	report := out.String()
	if !strings.Contains(report, "[core-runs failed:") {
		t.Error("core-runs did not record the daemon failure")
	}
	// Protocol-free sections never touch the daemon.
	if !strings.Contains(report, "Section 2/6: sharing profile") {
		t.Error("trace-analysis section missing from degraded report")
	}
}
