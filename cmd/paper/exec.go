package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dirsim/internal/atomicio"
	"dirsim/internal/coherence"
	"dirsim/internal/flight"
	"dirsim/internal/remote"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/spec"
	"dirsim/internal/tracegen"
)

// cellExec executes a batch of independent simulation cells, returning
// one result slice per cell in cell order. The report's cell-shaped
// sections all run through this seam, so -remote swaps every simulation
// in the report at once; trace-analysis and queueing-model sections have
// no simulation to ship and always run locally.
type cellExec func(ctx context.Context, cells []spec.Cell) ([][]sim.Result, error)

// localExec compiles cells to runner jobs and executes them on the
// shared pool — the default path. A non-nil sink gives every job a
// flight recorder for the report-wide trace export.
func localExec(ropts runner.Options, sink *traceSink) cellExec {
	return func(ctx context.Context, cells []spec.Cell) ([][]sim.Result, error) {
		jobs := make([]runner.Job, len(cells))
		for i, c := range cells {
			j, err := c.Job()
			if err != nil {
				return nil, err
			}
			jobs[i] = j
		}
		if sink != nil {
			// Sections run sequentially, so retargeting the captured
			// options' hook per batch is safe.
			ropts.TraceFor = sink.hook(jobs)
		}
		return runner.Run(ctx, jobs, ropts)
	}
}

// traceSink accumulates one flight recorder per executed job across every
// exec batch of a report run. Pids are report-wide job ordinals, so each
// job renders as its own process group in the exported trace.
type traceSink struct {
	sample int
	spans  bool

	mu   sync.Mutex
	recs []*flight.Recorder
}

// hook reserves recorder slots for one batch and returns the runner's
// TraceFor callback: a fresh recorder per attempt (so a retried job's
// trace is the attempt that produced its results), stored by batch-wide
// ordinal.
func (ts *traceSink) hook(jobs []runner.Job) func(index, attempt int) *flight.Recorder {
	ts.mu.Lock()
	base := len(ts.recs)
	ts.recs = append(ts.recs, make([]*flight.Recorder, len(jobs))...)
	ts.mu.Unlock()
	return func(index, attempt int) *flight.Recorder {
		rec := flight.New(flight.Options{
			Sample: ts.sample, Spans: ts.spans,
			Pid: base + index, Label: jobs[index].Label,
		})
		ts.mu.Lock()
		ts.recs[base+index] = rec
		ts.mu.Unlock()
		return rec
	}
}

// recorders returns the collected recorders in pid order.
func (ts *traceSink) recorders() []*flight.Recorder {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]*flight.Recorder(nil), ts.recs...)
}

// writeTrace exports the collected recorders crash-safely; the extension
// picks the format (see flight.FormatForPath).
func writeTrace(path string, recs []*flight.Recorder) error {
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	if err := flight.Write(f, path, recs...); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// remoteExec submits one daemon request per cell on a bounded pool of
// workers and rebuilds priceable results from the returned documents.
// The daemon deduplicates identical cells by content hash and serves
// repeats from its cache, so re-rendering a report is nearly free.
// Transient saturation (429/503) is retried on a deterministic backoff
// rather than failing a long report render; $DIRSIM_API_KEY
// authenticates against daemons running with tenants configured.
func remoteExec(baseURL string, workers int) cellExec {
	client := &remote.Client{
		BaseURL: baseURL,
		APIKey:  os.Getenv("DIRSIM_API_KEY"),
		Retry:   runner.RetryPolicy{Max: 4, Base: 250 * time.Millisecond, Seed: 1},
		Sleep:   time.Sleep,
	}
	return func(ctx context.Context, cells []spec.Cell) ([][]sim.Result, error) {
		if len(cells) == 0 {
			return nil, nil
		}
		if workers < 1 {
			workers = 1
		}
		if workers > len(cells) {
			workers = len(cells)
		}
		out := make([][]sim.Result, len(cells))
		errs := make([]error, len(cells))
		var claim atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(claim.Add(1)) - 1
					if i >= len(cells) || ctx.Err() != nil {
						return
					}
					c := cells[i]
					rs, err := client.RunCells(ctx, spec.Request{Cell: &c})
					if err != nil {
						errs[i] = fmt.Errorf("%s: %w", c.Label(), err)
						continue
					}
					out[i] = rs[0]
				}
			}()
		}
		wg.Wait()
		if err := errors.Join(errs...); err != nil {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		return out, nil
	}
}

// presetCells builds one cell per workload preset: the same scheme set in
// lockstep over each (optionally filtered) trace.
func presetCells(presets []tracegen.Config, filter string, schemes []string,
	cfg coherence.Config, s spec.Sim) []spec.Cell {
	cells := make([]spec.Cell, len(presets))
	for i, p := range presets {
		cells[i] = spec.Cell{
			Trace:   p,
			Filter:  filter,
			Schemes: append([]string(nil), schemes...),
			Machine: cfg,
			Sim:     s,
		}
	}
	return cells
}
