package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dirsim/internal/cluster"
	"dirsim/internal/obs"
	"dirsim/internal/spec"
)

func snapshotWithRefs(refs uint64) *obs.Snapshot {
	return &obs.Snapshot{
		Refs: refs, JobsDone: 3, JobsTotal: 4, Retries: 1,
		Counters: []obs.NamedValue{
			{Name: "cluster_hedge_fired", Value: 2},
			{Name: "cluster_hedge_win", Value: 1},
		},
	}
}

func TestRenderRatesAndDownPeers(t *testing.T) {
	clock := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	var out bytes.Buffer
	tp := &top{out: &out, now: func() time.Time { return clock }}

	doc := spec.ClusterMetricsDoc{Peers: []spec.PeerMetrics{
		{Addr: "http://a", Self: true, Up: true, Metrics: snapshotWithRefs(1000)},
		{Addr: "http://b", Up: false, Error: "connection refused"},
	}}
	tp.render(doc)
	first := out.String()
	if !strings.Contains(first, "http://a (self)") {
		t.Fatalf("self row missing:\n%s", first)
	}
	if !strings.Contains(first, "2 members, 1 up") {
		t.Fatalf("fleet summary wrong:\n%s", first)
	}
	if !strings.Contains(first, "connection refused") {
		t.Fatalf("down peer's error not shown:\n%s", first)
	}
	// No previous frame: rate is unknowable, not zero.
	if !strings.Contains(first, "-") {
		t.Fatalf("first frame should render '-' rates:\n%s", first)
	}

	// 10s later the self peer processed 500 more refs → 50/s.
	clock = clock.Add(10 * time.Second)
	doc.Peers[0].Metrics = snapshotWithRefs(1500)
	out.Reset()
	tp.render(doc)
	second := out.String()
	if !strings.Contains(second, "50/s") {
		t.Fatalf("rate from refs delta missing:\n%s", second)
	}
}

func TestRenderRestartResetsRate(t *testing.T) {
	clock := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	var out bytes.Buffer
	tp := &top{out: &out, now: func() time.Time { return clock }}
	doc := spec.ClusterMetricsDoc{Peers: []spec.PeerMetrics{
		{Addr: "http://a", Up: true, Metrics: snapshotWithRefs(1000)},
	}}
	tp.render(doc)

	// A restarted daemon's counter goes backwards; the rate must not
	// underflow to an enormous uint64 figure.
	clock = clock.Add(10 * time.Second)
	doc.Peers[0].Metrics = snapshotWithRefs(10)
	out.Reset()
	tp.render(doc)
	if got := out.String(); !strings.Contains(got, " - ") || strings.Contains(got, "/s") {
		t.Fatalf("backwards counter should render '-' rate:\n%s", got)
	}
}

func TestFrameFetchesFederatedDoc(t *testing.T) {
	doc := spec.ClusterMetricsDoc{Peers: []spec.PeerMetrics{
		{Addr: "http://a", Self: true, Up: true, Metrics: snapshotWithRefs(7)},
		{Addr: "http://b", Up: true, Metrics: snapshotWithRefs(9)},
	}}
	var gotKey string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/metrics" {
			http.NotFound(w, r)
			return
		}
		gotKey = r.Header.Get(cluster.KeyHeader)
		json.NewEncoder(w).Encode(doc)
	}))
	defer srv.Close()

	var out bytes.Buffer
	tp := &top{
		addr: srv.URL, key: "fleet-secret", http: srv.Client(),
		now: func() time.Time { return time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC) },
		out: &out,
	}
	if err := tp.frame(context.Background()); err != nil {
		t.Fatal(err)
	}
	if gotKey != "fleet-secret" {
		t.Fatalf("cluster key header = %q, want fleet-secret", gotKey)
	}
	for _, want := range []string{"http://a (self)", "http://b", "2 members, 2 up", "refs 16"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("frame output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFrameReportsHTTPError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"bad cluster key"}`, http.StatusForbidden)
	}))
	defer srv.Close()
	tp := &top{addr: srv.URL, http: srv.Client(), now: time.Now, out: &bytes.Buffer{}}
	err := tp.frame(context.Background())
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("want 403 error, got %v", err)
	}
}
