// Command dirsimtop is a terminal live ops view over a dirsimd fleet.
// It polls one daemon's federated GET /v1/cluster/metrics endpoint —
// that daemon scrapes its peers, so a single address is enough to see
// the whole fleet — and renders one plain-text table per refresh: a
// row per member with reference throughput, job progress, retry and
// failure counts, and the hedging/failover counters that show the
// fleet's resilience machinery working. Down peers stay visible as
// rows with their probe error; absence of data is itself data.
//
// Reference rates are computed client-side from the refs delta between
// consecutive frames, so the daemons stay rate-free and deterministic.
//
// Usage:
//
//	dirsimtop -addr http://127.0.0.1:8023 -key "$DIRSIM_CLUSTER_KEY"
//	dirsimtop -addr http://127.0.0.1:8023 -once   # one frame, for scripts
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"dirsim/internal/cluster"
	"dirsim/internal/obs"
	"dirsim/internal/spec"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirsimtop: ")
	addr := flag.String("addr", "http://127.0.0.1:8023", "base URL of any fleet member")
	key := flag.String("key", os.Getenv("DIRSIM_CLUSTER_KEY"), "shared cluster key (or tenant API key); default $DIRSIM_CLUSTER_KEY")
	interval := flag.Duration("interval", 2*time.Second, "refresh interval")
	once := flag.Bool("once", false, "render a single frame and exit (no screen clearing; for scripts and tests)")
	flag.Parse()

	t := &top{
		addr:  strings.TrimRight(*addr, "/"),
		key:   *key,
		http:  &http.Client{Timeout: 5 * time.Second},
		now:   time.Now,
		out:   os.Stdout,
		clear: !*once,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The first frame is load-bearing: a bad address or key should fail
	// loudly, not scroll errors forever.
	if err := t.frame(ctx); err != nil {
		log.Fatal(err)
	}
	if *once {
		return
	}
	ticker := time.NewTicker(*interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			fmt.Fprintln(t.out)
			return
		case <-ticker.C:
			if err := t.frame(ctx); err != nil {
				if ctx.Err() != nil {
					return
				}
				// Transient: the fleet outliving a blip is the point.
				fmt.Fprintf(t.out, "fetch: %v\n", err)
			}
		}
	}
}

// top holds the view state between frames. The clock is injected so
// tests drive the rate computation with a fixed timeline.
type top struct {
	addr  string
	key   string
	http  *http.Client
	now   func() time.Time
	out   io.Writer
	clear bool

	prevRefs map[string]uint64
	prevAt   time.Time
}

// frame fetches the federated document and renders one table.
func (t *top) frame(ctx context.Context) error {
	doc, err := t.fetch(ctx)
	if err != nil {
		return err
	}
	t.render(doc)
	return nil
}

func (t *top) fetch(ctx context.Context) (spec.ClusterMetricsDoc, error) {
	var doc spec.ClusterMetricsDoc
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.addr+"/v1/cluster/metrics", nil)
	if err != nil {
		return doc, err
	}
	if t.key != "" {
		req.Header.Set(cluster.KeyHeader, t.key)
	}
	resp, err := t.http.Do(req)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return doc, fmt.Errorf("%s: %s: %s", t.addr, resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, fmt.Errorf("%s: decoding cluster metrics: %v", t.addr, err)
	}
	return doc, nil
}

// render writes one frame: a fleet summary line and a member table.
// Rates come from the refs delta since the previous frame.
func (t *top) render(doc spec.ClusterMetricsDoc) {
	now := t.now()
	elapsed := now.Sub(t.prevAt)
	refs := make(map[string]uint64, len(doc.Peers))

	if t.clear {
		fmt.Fprint(t.out, "\x1b[H\x1b[2J")
	}
	var up int
	var totalRefs, totalDone, totalJobs uint64
	for _, p := range doc.Peers {
		if p.Up {
			up++
		}
		if p.Metrics != nil {
			totalRefs += p.Metrics.Refs
			totalDone += p.Metrics.JobsDone
			totalJobs += p.Metrics.JobsTotal
		}
	}
	fmt.Fprintf(t.out, "dirsim fleet — %d members, %d up — refs %d — jobs %d/%d — %s\n",
		len(doc.Peers), up, totalRefs, totalDone, totalJobs, now.Format("15:04:05"))

	w := tabwriter.NewWriter(t.out, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "PEER\tSTATE\tREFS\tREFS/S\tJOBS\tRETRY\tFAIL\tHEDGE\tWIN\tFAILOVER")
	for _, p := range doc.Peers {
		name := p.Addr
		if p.Self {
			name += " (self)"
		}
		if !p.Up || p.Metrics == nil {
			reason := p.Error
			if reason == "" {
				reason = "no metrics"
			}
			fmt.Fprintf(w, "%s\tdown\t-\t-\t-\t-\t-\t-\t-\t-\t%s\n", name, reason)
			continue
		}
		m := p.Metrics
		refs[p.Addr] = m.Refs
		fmt.Fprintf(w, "%s\tup\t%d\t%s\t%d/%d\t%d\t%d\t%d\t%d\t%d\n",
			name, m.Refs, rate(m.Refs, t.prevRefs[p.Addr], elapsed, t.prevRefs != nil),
			m.JobsDone, m.JobsTotal, m.Retries, m.Failures,
			counter(m, "cluster_hedge_fired"), counter(m, "cluster_hedge_win"),
			counter(m, "cluster_failover"))
	}
	w.Flush()
	t.prevRefs, t.prevAt = refs, now
}

// rate formats a per-second reference rate from two frames' counters.
// The first frame (and a counter that went backwards, i.e. a restarted
// daemon) has no meaningful rate and renders as "-".
func rate(cur, prev uint64, elapsed time.Duration, havePrev bool) string {
	if !havePrev || elapsed <= 0 || cur < prev {
		return "-"
	}
	return fmt.Sprintf("%.0f/s", float64(cur-prev)/elapsed.Seconds())
}

// counter looks up one named counter in a snapshot; absent reads as 0.
func counter(m *obs.Snapshot, name string) uint64 {
	for _, c := range m.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}
