package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"dirsim/internal/coherence"
	"dirsim/internal/obs"
	"dirsim/internal/spec"
)

// TestMain doubles the test binary as the daemon itself: a child process
// launched with DIRSIMD_TEST_CHILD=1 runs main() with whatever daemon
// flags the test passed, which is what lets the e2e tests below kill -9
// a real dirsimd process and restart it against the same state dir.
func TestMain(m *testing.M) {
	if os.Getenv("DIRSIMD_TEST_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// daemon is one child dirsimd process under test control.
type daemon struct {
	cmd  *exec.Cmd
	addr string
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// startDaemon launches the test binary as a dirsimd child and waits for
// it to publish its bound address.
func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	ready := filepath.Join(t.TempDir(), "addr")
	full := append([]string{"-addr", "127.0.0.1:0", "-ready-file", ready}, args...)
	cmd := exec.Command(os.Args[0], full...)
	cmd.Env = append(os.Environ(), "DIRSIMD_TEST_CHILD=1")
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		data, err := os.ReadFile(ready)
		if err == nil && len(bytes.TrimSpace(data)) > 0 {
			return &daemon{cmd: cmd, addr: string(bytes.TrimSpace(data))}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func e2eSweepBody(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(spec.Request{Sweep: &spec.Sweep{
		Workloads: []string{"pops", "pero"},
		Schemes:   []string{"dir0b"},
		CPUs:      []int{2, 4},
		Refs:      120_000,
		Seeds:     2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

const e2eCells = 8 // 2 workloads × 2 cpus × 2 seeds

// countCellDocs counts durable per-cell checkpoints under a state dir.
func countCellDocs(t *testing.T, stateDir string) int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(stateDir, "results", "cells", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return len(files)
}

func getJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("bad JSON from %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode, data
}

// The acceptance test for crash-survivable sweeps: a daemon hard-killed
// (SIGKILL — no drain, no goodbye) mid-sweep and restarted against the
// same state dir finishes exactly the missing cells and serves a result
// document byte-identical to an uninterrupted daemon's.
func TestKill9MidSweepResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	body := e2eSweepBody(t)

	// Reference: an uninterrupted daemon on its own state dir.
	refState := t.TempDir()
	ref := startDaemon(t, "-state-dir", refState, "-parallel", "1", "-executors", "1", "-chunk-cells", "1")
	resp, err := http.Post(ref.url("/v1/jobs?wait=1"), "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("reference run: %d %s (%v)", resp.StatusCode, want, err)
	}

	// Victim: same sweep submitted asynchronously, killed once some but
	// not all cells are checkpointed. -parallel 1 -executors 1
	// -chunk-cells 1 serialises the cells, keeping the kill window wide.
	state := t.TempDir()
	victim := startDaemon(t, "-state-dir", state, "-parallel", "1", "-executors", "1", "-chunk-cells", "1")
	var status spec.JobStatus
	if code, data := postBody(t, victim.url("/v1/jobs"), body, &status); code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, data)
	}
	deadline := time.Now().Add(60 * time.Second)
	for countCellDocs(t, state) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no cell checkpoints appeared")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	victim.cmd.Wait()
	survived := countCellDocs(t, state)
	if survived >= e2eCells {
		t.Skipf("daemon finished all %d cells before the kill landed; no interruption to test", survived)
	}

	// Restart on the same state dir: the journal owes the job, recovery
	// finishes it without being asked.
	revived := startDaemon(t, "-state-dir", state, "-parallel", "1", "-executors", "1", "-chunk-cells", "1")
	var got []byte
	for {
		var doc spec.ResultDoc
		code, data := getJSON(t, revived.url("/v1/jobs/"+status.ID), &doc)
		if code == http.StatusOK && doc.Status == "done" {
			got = data
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recovered job never finished: %d %s", code, data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered document differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}

	// No cell simulated twice: the revived daemon ran exactly the cells
	// that had no durable checkpoint at restart.
	var snap obs.Snapshot
	getJSON(t, revived.url("/metrics"), &snap)
	if snap.JobsTotal != uint64(e2eCells-survived) {
		t.Errorf("revived daemon simulated %d cells, want %d (%d survived the kill)", snap.JobsTotal, e2eCells-survived, survived)
	}

	// And a clean SIGTERM drain leaves nothing owed.
	revived.cmd.Process.Signal(syscall.SIGTERM)
	if err := revived.cmd.Wait(); err != nil {
		t.Fatalf("drain exit: %v", err)
	}
	journal, err := os.ReadFile(filepath.Join(state, "journal.ndjson"))
	if err == nil && len(bytes.TrimSpace(journal)) != 0 {
		// Live records would replay on the next start; a resolve-tail is
		// fine, compaction removes it. Assert a fresh daemon owes nothing.
		clean := startDaemon(t, "-state-dir", state)
		var ready map[string]string
		code, _ := getJSON(t, clean.url("/readyz"), &ready)
		if code != http.StatusOK || ready["status"] != "ok" {
			t.Errorf("post-drain readyz: %d %v", code, ready)
		}
	}
}

// The readiness endpoint distinguishes rejection states end to end: a
// daemon with tenants configured 403s keyless submits while /readyz
// stays ok, and SIGTERM flips /readyz to draining (503) while the
// process finishes its work.
func TestReadyzAndAuthEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	tenants := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(tenants, []byte(`[{"name":"ci","key":"ci-key","weight":2}]`), 0o600); err != nil {
		t.Fatal(err)
	}
	d := startDaemon(t, "-tenants", tenants)

	var ready map[string]string
	if code, _ := getJSON(t, d.url("/readyz"), &ready); code != http.StatusOK || ready["status"] != "ok" {
		t.Fatalf("readyz: %d %v", code, ready)
	}
	tc, err := spec.Preset("pops", 2_000)
	if err != nil {
		t.Fatal(err)
	}
	tc.CPUs = 2
	cell, err := json.Marshal(spec.Request{Cell: &spec.Cell{
		Trace:   tc,
		Schemes: []string{"dir0b"},
		Machine: coherence.Config{Caches: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	code, data := postBody(t, d.url("/v1/jobs?wait=1"), cell, nil)
	if code != http.StatusForbidden {
		t.Fatalf("keyless submit: %d %s", code, data)
	}
	req, _ := http.NewRequest(http.MethodPost, d.url("/v1/jobs?wait=1"), bytes.NewReader(cell))
	req.Header.Set("Authorization", "Bearer ci-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	okBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized submit: %d %s", resp.StatusCode, okBody)
	}

	d.cmd.Process.Signal(syscall.SIGTERM)
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(d.url("/readyz"))
		if err != nil {
			break // listener closed: drain completed
		}
		var st map[string]string
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && st["status"] == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never reported draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Fatalf("drain exit: %v", err)
	}
}

func postBody(t *testing.T, url string, body []byte, v any) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("bad JSON from %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode, data
}

func init() {
	// Each request dials fresh: reused connections to a killed daemon
	// would surface as confusing mid-test EOFs.
	http.DefaultTransport.(*http.Transport).DisableKeepAlives = true
}
