// Command dirsimd serves simulations as a daemon: a stdlib-only HTTP
// service that accepts cell and sweep specs as jobs, executes them on the
// shared runner pool with the usual resilience policies, deduplicates
// concurrent identical submissions by content hash, and answers repeats
// from a content-addressed result cache (in-memory LRU plus an optional
// crash-safe on-disk store).
//
// With -state-dir the daemon is crash-survivable: accepted jobs are
// journaled before the submit is acknowledged, sweeps checkpoint per
// cell, and a daemon restarted after kill -9 replays the journal,
// re-simulates only the missing cells, and reassembles results
// byte-identical to an uninterrupted run. With -tenants the daemon is
// multi-tenant: API keys map to tenants with quotas and weights, queued
// work drains by weighted fair share, and interactive ?wait=1 requests
// are dispatched ahead of batch sweeps.
//
// Endpoints (see API.md for the full reference):
//
//	POST /v1/jobs            submit a spec; ?wait=1 blocks for the result
//	GET  /v1/jobs/{id}       job status, or the result document when done
//	GET  /v1/jobs/{id}/events  NDJSON stream of status/progress/chunk events
//	GET  /v1/jobs/{id}/trace  a terminal job's flight trace (with -trace-sample)
//	GET  /v1/engines         engine and trace-filter registries
//	GET  /v1/trace/{traceid}  this daemon's fabric spans for one trace id (NDJSON)
//	GET  /v1/cluster/metrics  federated fleet metrics, one row per member
//	GET  /healthz            liveness (503 while draining)
//	GET  /readyz             readiness (starting/recovering/draining vs ok)
//	GET  /metrics            server-wide obs counters as JSON (?format=prometheus for text exposition)
//
// SIGINT/SIGTERM trigger a graceful drain: intake stops (503), in-flight
// jobs run to completion with their results durably written via
// internal/atomicio, then the process exits 0. A drain that exceeds
// -drain-timeout exits 1 instead.
//
// Usage:
//
//	dirsimd -addr 127.0.0.1:8023 -parallel 4 -state-dir /var/tmp/dirsim
//	dirsimd -addr 127.0.0.1:8023 -tenants tenants.json   # API-key admission
//	dirsimd -addr 127.0.0.1:0 -ready-file dirsimd.addr   # test harnesses
//	dirsimd -addr 127.0.0.1:8023 -cluster-peers peers.json  # fleet member
//
// With -cluster-peers the daemon joins a static fleet: before simulating
// a cell it asks the cell's rendezvous-hash owner (then one sibling) for
// an already-finished document over GET /v1/cache/{hash}, authenticated
// by the membership's shared key, and it serves the same endpoint to its
// peers. A background prober marks unreachable peers down so fetches
// skip them. The peers file may appear after startup (test harnesses
// compose it from ready files); peering stays off until it loads.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"dirsim/internal/atomicio"
	"dirsim/internal/cluster"
	"dirsim/internal/obs"
	"dirsim/internal/otrace"
	"dirsim/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirsimd: ")
	addr := flag.String("addr", "127.0.0.1:8023", "listen address (port 0 picks a free port)")
	readyFile := flag.String("ready-file", "", "write the bound address to this file once listening (for scripts using port 0)")
	parallel := flag.Int("parallel", 4, "concurrent cell simulations per job")
	executors := flag.Int("executors", 2, "concurrently running jobs")
	queue := flag.Int("queue", 16, "accepted-but-unfinished job bound beyond the executors (full queue answers 429)")
	cacheDir := flag.String("cache-dir", "", "persist results as <hash>.json under this directory (empty = memory only, or <state-dir>/results with -state-dir)")
	cacheEntries := flag.Int("cache-entries", 128, "in-memory result cache capacity")
	stateDir := flag.String("state-dir", "", "journal accepted jobs under this directory; a restarted daemon resumes exactly the unfinished work (empty = stateless)")
	tenantsFile := flag.String("tenants", "", "JSON file of API tenants ([{name,key,weight,max_active}]); empty = open mode, no authentication")
	chunkCells := flag.Int("chunk-cells", 16, "sweep cells per execution chunk (the checkpoint and yield granularity)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-attempt deadline for each cell (0 = no limit)")
	stallTimeout := flag.Duration("stall-timeout", 0, "fail a cell when no progress for this long (0 = off)")
	retries := flag.Int("retries", 2, "extra attempts for cells failing with transient errors")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "backoff before the first retry (doubles per attempt, jittered)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "bound on graceful shutdown")
	traceSample := flag.Int("trace-sample", 0, "record a flight trace per executed job, sampling every Nth reference (0 = off); serve via GET /v1/jobs/{id}/trace")
	traceSpans := flag.Int("trace-spans", 0, "fabric span ring capacity (0 = default 16384); serve via GET /v1/trace/{traceid}")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this extra listener (empty = off); keep it private")
	clusterPeers := flag.String("cluster-peers", "", "JSON membership file ({key, peers:[{addr,weight}]}); join the fleet it describes (empty = standalone)")
	clusterProbe := flag.Duration("cluster-probe", 5*time.Second, "interval between peer /readyz health probes in cluster mode")
	flag.Parse()

	tenants, err := loadTenants(*tenantsFile)
	if err != nil {
		log.Fatal(err)
	}

	// Listen before building the server: cluster mode needs the bound
	// address (port 0 resolves here) to find itself in the membership.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}

	var (
		clusterSrc    *cluster.Source
		clusterHealth *cluster.Health
	)
	if *clusterPeers != "" {
		clusterSrc = cluster.FileSource(*clusterPeers)
		clusterHealth = cluster.NewHealth()
	}

	// The tracer is always on: span recording is allocation-free and the
	// store is a fixed ring, so the daemon's fabric is observable by
	// default. The service name is the bound address — the identity peers
	// see — so a merged fleet trace attributes every span to its daemon.
	metrics := obs.NewMetrics()
	nowNanos := func() int64 { return time.Now().UnixNano() }
	tracer := otrace.New("dirsimd:"+ln.Addr().String(), nowNanos, otrace.NewStore(*traceSpans), metrics)

	s, err := server.New(server.Config{
		Workers:      *parallel,
		Executors:    *executors,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		CacheDir:     *cacheDir,
		StateDir:     *stateDir,
		Tenants:      tenants,
		ChunkCells:   *chunkCells,
		JobTimeout:   *jobTimeout,
		StallTimeout: *stallTimeout,
		Retries:      *retries,
		RetryBase:    *retryBase,
		Sleep:        time.Sleep,
		NowNanos:     nowNanos,
		Metrics:      metrics,
		Tracer:       tracer,
		TraceSample:  *traceSample,

		ClusterSource:   clusterSrc,
		ClusterSelfAddr: ln.Addr().String(),
		ClusterHealth:   clusterHealth,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on http://%s", ln.Addr())
	if *readyFile != "" {
		if err := atomicio.WriteFile(*readyFile, []byte(ln.Addr().String()+"\n")); err != nil {
			log.Fatal(err)
		}
	}

	if *debugAddr != "" {
		// The pprof listener is separate from the API listener so the
		// profiling surface is never exposed on the service address.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("pprof on http://%s/debug/pprof/", dln.Addr())
		debugSrv := &http.Server{
			Handler:           http.DefaultServeMux, // net/http/pprof registers here
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && err != http.ErrServerClosed {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	// The base context is deliberately background: a signal must drain,
	// not cancel — in-flight jobs finish and land durably in the cache.
	s.Start(context.Background())

	probeCtx, probeCancel := context.WithCancel(context.Background())
	defer probeCancel()
	if clusterSrc != nil {
		prober := &cluster.Prober{
			Source:   clusterSrc,
			Health:   clusterHealth,
			SelfAddr: ln.Addr().String(),
			HTTP:     &http.Client{Timeout: 2 * time.Second},
			Interval: *clusterProbe,
			// ctx-aware sleep: a drain interrupts the wait instead of
			// finishing out a full probe interval.
			Sleep: func(d time.Duration) {
				t := time.NewTimer(d)
				defer t.Stop()
				select {
				case <-t.C:
				case <-probeCtx.Done():
				}
			},
			FailAfter: 2,
		}
		go prober.Run(probeCtx)
	}
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("%s: draining (in-flight jobs will finish)", sig)
	case err := <-serveErr:
		log.Fatal(err)
	}

	probeCancel()
	dctx, dcancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		log.Fatal(err)
	}
	// Every accepted job is finished and durable; now flush the waiting
	// clients' responses and close the listener.
	if err := httpSrv.Shutdown(dctx); err != nil {
		log.Fatal(err)
	}
	log.Print("drained cleanly")
}

// loadTenants reads the -tenants file: a JSON array of tenant objects.
// An empty path means open mode (no authentication).
func loadTenants(path string) ([]server.Tenant, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	var tenants []server.Tenant
	if err := json.Unmarshal(data, &tenants); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	return tenants, nil
}
