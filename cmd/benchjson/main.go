// Command benchjson turns `go test -bench -benchmem` text output into a
// compact JSON baseline and checks fresh runs against a committed one.
//
// The baseline file (BENCH_*.json) records two phases per sub-benchmark —
// "before" and "after" — so a performance PR carries its own evidence:
// the numbers the rewrite started from and the numbers it landed at, with
// B/op and allocs/op alongside throughput. CI replays the benchmark and
// compares against the committed "after" phase:
//
//	go test -run '^$' -bench X -benchmem . | benchjson              # parse to stdout
//	go test ... | benchjson -out BENCH_7.json -phase after          # record a phase
//	go test ... | benchjson -check BENCH_7.json                     # gate a fresh run
//
// Tolerances live in the baseline file next to the numbers they guard.
// The defaults are deliberately asymmetric: throughput may drop to half
// the recorded value before failing, because shared CI runners are both
// slower and noisier than the machine that recorded the baseline, while
// allocs/op — which is deterministic for a fixed workload — may grow by
// at most 10% before the gate trips.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"dirsim/internal/atomicio"
)

// Result is one sub-benchmark's measurements.
type Result struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MrefsPerSec float64 `json:"mrefs_per_sec,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Tolerance bounds how far a fresh run may drift from the committed
// "after" phase before -check fails.
type Tolerance struct {
	// MrefsFrac is the allowed fractional throughput drop: a run fails
	// when measured < recorded*(1-MrefsFrac).
	MrefsFrac float64 `json:"mrefs_frac"`
	// AllocsFrac is the allowed fractional allocs/op growth: a run
	// fails when measured > recorded*(1+AllocsFrac).
	AllocsFrac float64 `json:"allocs_frac"`
	Note       string  `json:"note,omitempty"`
}

// Baseline is the committed BENCH_*.json document.
type Baseline struct {
	Benchmark string            `json:"benchmark,omitempty"`
	Machine   string            `json:"machine,omitempty"`
	Note      string            `json:"note,omitempty"`
	Tolerance Tolerance         `json:"tolerance"`
	Before    map[string]Result `json:"before,omitempty"`
	After     map[string]Result `json:"after,omitempty"`
}

func main() {
	out := flag.String("out", "", "baseline file to record the parsed run into (with -phase)")
	phase := flag.String("phase", "after", "which phase -out records: before or after")
	check := flag.String("check", "", "baseline file to compare the parsed run against")
	flag.Parse()

	if err := run(os.Stdin, os.Stdout, *out, *phase, *check); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, stdout io.Writer, out, phase, check string) error {
	results, meta, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return errors.New("no benchmark result lines on stdin")
	}
	switch {
	case check != "":
		return checkBaseline(stdout, check, results)
	case out != "":
		return record(out, phase, results, meta)
	default:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
}

// parseBench reads `go test -bench` text output: one "Benchmark..." line
// per result, whitespace-separated as name, iterations, then value/unit
// pairs. Keys drop the "Benchmark" prefix and the "-<procs>" suffix.
// It also captures the cpu: line as machine metadata.
func parseBench(in io.Reader) (map[string]Result, string, error) {
	results := map[string]Result{}
	machine := ""
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			machine = strings.TrimSpace(cpu)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // "Benchmark..." heading without results
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i >= 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		r := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("%s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "Mrefs/s":
				r.MrefsPerSec = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		results[name] = r
	}
	return results, machine, sc.Err()
}

// record merges the parsed run into the baseline file's named phase,
// preserving the other phase and the tolerances. A fresh file gets the
// default tolerances documented in the package comment.
func record(path, phase string, results map[string]Result, machine string) error {
	if phase != "before" && phase != "after" {
		return fmt.Errorf("-phase must be before or after, got %q", phase)
	}
	base := Baseline{
		Tolerance: Tolerance{
			MrefsFrac:  0.5,
			AllocsFrac: 0.10,
			Note: "throughput may halve before failing (CI runners are slower and noisier " +
				"than the recording machine); allocs/op is deterministic for a fixed workload " +
				"and may grow at most 10%",
		},
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	if machine != "" {
		base.Machine = machine
	}
	if bench := commonBenchmark(results); bench != "" {
		base.Benchmark = "Benchmark" + bench
	}
	if phase == "before" {
		base.Before = results
	} else {
		base.After = results
	}
	data, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(data, '\n'))
}

// commonBenchmark returns the shared top-level benchmark name, or "".
func commonBenchmark(results map[string]Result) string {
	bench := ""
	for name := range results {
		top, _, _ := strings.Cut(name, "/")
		if bench != "" && bench != top {
			return ""
		}
		bench = top
	}
	return bench
}

// checkBaseline compares the parsed run against the committed "after"
// phase and returns an error if any shared sub-benchmark regresses past
// the file's tolerances.
func checkBaseline(stdout io.Writer, path string, results map[string]Result) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(base.After) == 0 {
		return fmt.Errorf("%s has no after phase to check against", path)
	}
	names := make([]string, 0, len(base.After))
	for name := range base.After {
		names = append(names, name)
	}
	sort.Strings(names)

	matched, failed := 0, 0
	for _, name := range names {
		want := base.After[name]
		got, ok := results[name]
		if !ok {
			fmt.Fprintf(stdout, "%-40s not in this run, skipped\n", name)
			continue
		}
		matched++
		status := "ok"
		minMrefs := want.MrefsPerSec * (1 - base.Tolerance.MrefsFrac)
		maxAllocs := float64(want.AllocsPerOp) * (1 + base.Tolerance.AllocsFrac)
		if want.MrefsPerSec > 0 && got.MrefsPerSec < minMrefs {
			status = fmt.Sprintf("FAIL: %.2f Mrefs/s < floor %.2f", got.MrefsPerSec, minMrefs)
			failed++
		} else if float64(got.AllocsPerOp) > maxAllocs {
			status = fmt.Sprintf("FAIL: %d allocs/op > ceiling %.0f", got.AllocsPerOp, maxAllocs)
			failed++
		}
		fmt.Fprintf(stdout, "%-40s %8.2f Mrefs/s (baseline %8.2f)  %7d allocs/op (baseline %7d)  %s\n",
			name, got.MrefsPerSec, want.MrefsPerSec, got.AllocsPerOp, want.AllocsPerOp, status)
	}
	if matched == 0 {
		return fmt.Errorf("no sub-benchmark in this run matches %s", path)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d sub-benchmarks regressed past tolerance", failed, matched)
	}
	return nil
}
