package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: dirsim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimulatorThroughput/single-4         	     166	  14552858 ns/op	  13.74 MB/s	        13.74 Mrefs/s	 1338984 B/op	   11539 allocs/op
BenchmarkSimulatorThroughput/sequential-4     	      79	  29808535 ns/op	   6.71 MB/s	        26.84 Mrefs/s	 3721276 B/op	   62406 allocs/op
PASS
ok  	dirsim	3.936s
`

func TestParseBench(t *testing.T) {
	results, machine, err := parseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if want := "Intel(R) Xeon(R) Processor @ 2.10GHz"; machine != want {
		t.Errorf("machine = %q, want %q", machine, want)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %v", len(results), results)
	}
	single, ok := results["SimulatorThroughput/single"]
	if !ok {
		t.Fatalf("missing single (procs suffix not stripped?): %v", results)
	}
	if single.MrefsPerSec != 13.74 || single.BytesPerOp != 1338984 || single.AllocsPerOp != 11539 {
		t.Errorf("single = %+v", single)
	}
	if single.Iterations != 166 || single.NsPerOp != 14552858 {
		t.Errorf("single = %+v", single)
	}
}

func TestRecordPreservesOtherPhase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	results, _, err := parseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if err := record(path, "before", results, "m1"); err != nil {
		t.Fatal(err)
	}
	// Recording "after" must keep "before" and the default tolerances.
	after := map[string]Result{
		"SimulatorThroughput/single": {Iterations: 500, MrefsPerSec: 55, BytesPerOp: 1071224, AllocsPerOp: 87},
	}
	if err := record(path, "after", after, "m2"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.Benchmark != "BenchmarkSimulatorThroughput" {
		t.Errorf("benchmark = %q", base.Benchmark)
	}
	if base.Before["SimulatorThroughput/single"].AllocsPerOp != 11539 {
		t.Errorf("before phase lost: %+v", base.Before)
	}
	if base.After["SimulatorThroughput/single"].AllocsPerOp != 87 {
		t.Errorf("after phase wrong: %+v", base.After)
	}
	if base.Tolerance.MrefsFrac != 0.5 || base.Tolerance.AllocsFrac != 0.10 {
		t.Errorf("default tolerances lost: %+v", base.Tolerance)
	}
	if base.Machine != "m2" {
		t.Errorf("machine = %q, want the latest recording's", base.Machine)
	}
}

func TestCheckBaseline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	after := map[string]Result{
		"SimulatorThroughput/single": {MrefsPerSec: 50, AllocsPerOp: 100},
	}
	if err := record(path, "after", after, ""); err != nil {
		t.Fatal(err)
	}
	check := func(mrefs float64, allocs int64) error {
		var sb strings.Builder
		return checkBaseline(&sb, path, map[string]Result{
			"SimulatorThroughput/single": {MrefsPerSec: mrefs, AllocsPerOp: allocs},
		})
	}
	// Within tolerance: half throughput, +10% allocs.
	if err := check(25, 110); err != nil {
		t.Errorf("run at the tolerance edge should pass: %v", err)
	}
	if err := check(24, 100); err == nil {
		t.Error("throughput below the floor should fail")
	}
	if err := check(50, 111); err == nil {
		t.Error("allocs/op above the ceiling should fail")
	}
	// A run sharing no sub-benchmark with the baseline is a config error.
	var sb strings.Builder
	if err := checkBaseline(&sb, path, map[string]Result{"Other/x": {}}); err == nil {
		t.Error("disjoint run should fail, not silently pass")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var sb strings.Builder
	if err := run(strings.NewReader("PASS\n"), &sb, "", "after", ""); err == nil {
		t.Error("input without benchmark lines should be an error")
	}
}
