// Command soak is the multi-tenant burn-in driver for dirsimd: it boots
// a stateful daemon with three synthetic tenants (two batch, one
// interactive), fires thousands of concurrent submissions at it, hard-
// kills and restarts the daemon mid-soak, and then audits the wreckage:
//
//   - zero lost jobs — every acknowledged submission reaches "done",
//     including work the killed daemon owed at the moment it died;
//   - zero duplicated work — the revived daemon's jobs_total equals
//     exactly the cells that had no durable checkpoint at restart;
//   - bounded queue depth — the dirsim_queue_depth histogram never saw
//     a value beyond the configured admission bound;
//   - fair-share admission — the interactive tenant's admit-wait stays
//     at or below the batch tenants' even while batch floods the queue.
//
// `make soak-smoke` runs this with a freshly built daemon; CI runs the
// same target.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dirsim/internal/atomicio"
	"dirsim/internal/coherence"
	"dirsim/internal/obs"
	"dirsim/internal/spec"
)

// tenantPlan is one synthetic tenant in the soak: batch tenants submit
// asynchronously, the interactive tenant submits with ?wait=1 so every
// request rides the priority class the fairness claim is about.
type tenantPlan struct {
	name        string
	key         string
	weight      int
	interactive bool
	// ratePerSec/burst configure the tenant's edge token bucket. The
	// soak sets them generous — high enough that no request is expected
	// to be rejected, low enough that the bucket's refill path runs on
	// every submission — so rate limiting is exercised without turning
	// the soak's own load into a flake source.
	ratePerSec float64
	burst      int
}

var tenantPlans = []tenantPlan{
	{name: "alpha", key: "alpha-key", weight: 1, ratePerSec: 1000, burst: 1000},
	{name: "beta", key: "beta-key", weight: 3, ratePerSec: 1000, burst: 1000},
	{name: "gamma", key: "gamma-key", weight: 2, interactive: true, ratePerSec: 1000, burst: 1000},
}

type options struct {
	daemon    string
	dir       string
	jobs      int
	workers   int
	queue     int
	executors int
	refs      int
	restart   bool
	timeout   time.Duration
	verbose   bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("soak: ")
	var o options
	flag.StringVar(&o.daemon, "daemon", "", "path to a dirsimd binary (required)")
	flag.StringVar(&o.dir, "dir", "", "scratch directory (default: a fresh temp dir)")
	flag.IntVar(&o.jobs, "jobs", 2001, "total submissions, split round-robin across the three tenants")
	flag.IntVar(&o.workers, "workers", 48, "concurrent submitters")
	flag.IntVar(&o.queue, "queue", 64, "daemon queue depth (a power of two keeps the histogram bound tight)")
	flag.IntVar(&o.executors, "executors", 4, "daemon executors")
	flag.IntVar(&o.refs, "refs", 2_000, "references per cell (every cell is unique by seed)")
	flag.BoolVar(&o.restart, "restart", true, "SIGKILL the daemon mid-soak and restart it on the same state dir")
	flag.DurationVar(&o.timeout, "timeout", 10*time.Minute, "overall deadline")
	flag.BoolVar(&o.verbose, "v", false, "pass the daemon's log through to stderr")
	flag.Parse()
	if o.daemon == "" {
		log.Fatal("-daemon is required (a built dirsimd binary)")
	}
	if err := run(o); err != nil {
		log.Fatal(err)
	}
	log.Print("soak passed")
}

// soak carries the run's moving parts: the current daemon process, the
// stable address every worker targets, and the per-job outcome slots.
type soak struct {
	o        options
	stateDir string
	tenants  string
	addr     string
	client   *http.Client
	deadline time.Time

	mu  sync.Mutex
	cmd *exec.Cmd

	acked atomic.Int64
	ids   []string // job id per submission, filled by the worker that acked it
	errs  []error  // first error per submission, nil on success
}

func run(o options) error {
	if o.dir == "" {
		dir, err := os.MkdirTemp("", "dirsim-soak-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		o.dir = dir
	}
	if err := os.MkdirAll(o.dir, 0o777); err != nil {
		return err
	}
	s := &soak{
		o:        o,
		stateDir: filepath.Join(o.dir, "state"),
		tenants:  filepath.Join(o.dir, "tenants.json"),
		deadline: time.Now().Add(o.timeout),
		ids:      make([]string, o.jobs),
		errs:     make([]error, o.jobs),
		client: &http.Client{
			Timeout: 2 * time.Minute,
			// Fresh dials only: reused connections to a killed daemon
			// would surface as spurious mid-soak EOFs.
			Transport: &http.Transport{DisableKeepAlives: true},
		},
	}
	var tenants []map[string]any
	for _, tp := range tenantPlans {
		tenants = append(tenants, map[string]any{
			"name": tp.name, "key": tp.key, "weight": tp.weight,
			"requests_per_sec": tp.ratePerSec, "burst": tp.burst,
		})
	}
	tdata, err := json.Marshal(tenants)
	if err != nil {
		return err
	}
	if err := atomicio.WriteFile(s.tenants, tdata); err != nil {
		return err
	}
	defer s.stopDaemon()
	if err := s.startDaemon("127.0.0.1:0"); err != nil {
		return err
	}
	log.Printf("daemon up on %s: %d jobs, %d workers, queue %d, restart=%v",
		s.addr, o.jobs, o.workers, o.queue, o.restart)

	var wg sync.WaitGroup
	var claim atomic.Int64
	for w := 0; w < o.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(claim.Add(1)) - 1
				if i >= s.o.jobs {
					return
				}
				s.errs[i] = s.submit(i)
				s.acked.Add(1)
			}
		}()
	}

	survived := -1
	if o.restart {
		// Let a chunk of the soak land, then yank the power cord.
		for s.acked.Load() < int64(o.jobs*2/5) {
			if time.Now().After(s.deadline) {
				return fmt.Errorf("deadline before restart point: %d/%d acked", s.acked.Load(), o.jobs)
			}
			time.Sleep(10 * time.Millisecond)
		}
		if err := s.kill9(); err != nil {
			return err
		}
		survived = s.countCellDocs()
		log.Printf("killed -9 at %d/%d acked; %d durable cell checkpoints survived", s.acked.Load(), o.jobs, survived)
		if err := s.startDaemon(s.addr); err != nil {
			return err
		}
	}
	wg.Wait()

	var failed int
	for i, err := range s.errs {
		if err != nil {
			failed++
			if failed <= 5 {
				log.Printf("submission %d: %v", i, err)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d submissions failed", failed, o.jobs)
	}

	if err := s.awaitAllDone(); err != nil {
		return err
	}
	log.Printf("all %d jobs done (zero lost)", o.jobs)

	snap, err := s.metricsJSON()
	if err != nil {
		return err
	}
	if o.restart {
		// The exact no-duplication ledger: the revived daemon simulates a
		// cell iff it had no durable checkpoint when the axe fell. Every
		// cell in this soak is unique, so its jobs_total must equal the
		// total minus the survivors — one short means a lost job, one
		// over means a cell simulated twice.
		want := uint64(o.jobs - survived)
		if snap.JobsTotal != want {
			return fmt.Errorf("revived daemon simulated %d cells, want %d (%d of %d survived the kill)",
				snap.JobsTotal, want, survived, o.jobs)
		}
		log.Printf("revived daemon simulated exactly %d missing cells (zero duplicated)", want)
	} else if snap.JobsTotal != uint64(o.jobs) {
		return fmt.Errorf("daemon simulated %d cells, want %d", snap.JobsTotal, o.jobs)
	}
	if err := s.checkHistograms(snap); err != nil {
		return err
	}
	if err := s.checkPrometheus(); err != nil {
		return err
	}

	// A clean drain must leave nothing owed: SIGTERM, then a fresh
	// daemon on the same state dir has to report ready immediately.
	if err := s.drain(); err != nil {
		return err
	}
	if err := s.startDaemon(s.addr); err != nil {
		return err
	}
	var ready struct {
		Status string `json:"status"`
	}
	code, err := s.getJSON("/readyz", &ready)
	if err != nil {
		return err
	}
	if code != http.StatusOK || ready.Status != "ok" {
		return fmt.Errorf("post-drain restart readyz: %d %q (journal not clean?)", code, ready.Status)
	}
	return s.drain()
}

// body builds submission i's request: a single-cell job made unique by
// its trace seed, so every submission is distinct work with a distinct
// content hash.
func body(i, refs int) ([]byte, error) {
	tc, err := spec.Preset("pops", refs)
	if err != nil {
		return nil, err
	}
	tc.Seed = int64(i + 1)
	tc.CPUs = 2 + 2*(i%2)
	return json.Marshal(spec.Request{Cell: &spec.Cell{
		Trace:   tc,
		Schemes: []string{"dir0b"},
		Machine: coherence.Config{Caches: tc.CPUs},
	}})
}

// submit pushes submission i until the daemon acknowledges it, retrying
// transport errors (the daemon is dead for a stretch of the soak) and
// saturation answers. Interactive submissions block for the result;
// batch submissions record the job id for the later completion audit.
func (s *soak) submit(i int) error {
	tp := tenantPlans[i%len(tenantPlans)]
	data, err := body(i, s.o.refs)
	if err != nil {
		return err
	}
	url := "http://" + s.addr + "/v1/jobs"
	if tp.interactive {
		url += "?wait=1"
	}
	for {
		if time.Now().After(s.deadline) {
			return fmt.Errorf("deadline submitting as %s", tp.name)
		}
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Authorization", "Bearer "+tp.key)
		resp, err := s.client.Do(req)
		if err != nil {
			// Daemon down (mid-restart) or a ?wait=1 connection the kill
			// severed: back off and resubmit; the journal and the
			// content-addressed cache make the retry idempotent.
			time.Sleep(100 * time.Millisecond)
			continue
		}
		rbody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK: // interactive: the result document itself
			var doc spec.ResultDoc
			if err := json.Unmarshal(rbody, &doc); err != nil || doc.Status != "done" {
				return fmt.Errorf("interactive result: %v (%.120s)", err, rbody)
			}
			s.ids[i] = doc.ID
			return nil
		case http.StatusAccepted: // batch: audit completion later
			var st spec.JobStatus
			if err := json.Unmarshal(rbody, &st); err != nil || st.ID == "" {
				return fmt.Errorf("accept body: %v (%.120s)", err, rbody)
			}
			s.ids[i] = st.ID
			return nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			time.Sleep(retryAfter(resp))
		default:
			return fmt.Errorf("submit as %s: %d %.200s", tp.name, resp.StatusCode, rbody)
		}
	}
}

// retryAfter honors the daemon's Retry-After header, with a floor that
// keeps saturation retries from busy-spinning.
func retryAfter(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return 50 * time.Millisecond
}

// awaitAllDone polls every acknowledged job until it reports done —
// the zero-lost-jobs audit. Jobs finished before the kill are served
// from the disk cache; jobs the dead daemon owed were replayed.
func (s *soak) awaitAllDone() error {
	remaining := map[int]bool{}
	for i := range s.ids {
		remaining[i] = true
	}
	for len(remaining) > 0 {
		if time.Now().After(s.deadline) {
			return fmt.Errorf("deadline with %d jobs not done (lost?)", len(remaining))
		}
		for i := range remaining {
			var doc spec.ResultDoc
			code, err := s.getJSON("/v1/jobs/"+s.ids[i], &doc)
			if err != nil {
				break // daemon briefly unreachable; re-poll
			}
			if code == http.StatusOK && doc.Status == "done" {
				delete(remaining, i)
			} else if code == http.StatusNotFound {
				return fmt.Errorf("job %d (%s) vanished: lost across restart", i, s.ids[i])
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}

// checkHistograms audits the admission histograms: queue depth stayed
// within the configured bound, every tenant shows up in the per-tenant
// series, and the interactive tenant's admit-wait did not fall behind
// the batch tenants' — the fairness floor under a batch flood.
func (s *soak) checkHistograms(snap obs.Snapshot) error {
	hists := map[string]obs.HistogramSnapshot{}
	for _, h := range snap.Histograms {
		hists[h.Name] = h
	}
	qd, ok := hists[obs.HistQueueDepth]
	if !ok || qd.Count == 0 {
		return fmt.Errorf("no %s observations", obs.HistQueueDepth)
	}
	maxSeen := uint64(0)
	for i := len(qd.Buckets) - 1; i >= 0; i-- {
		if qd.Buckets[i] > 0 {
			maxSeen = obs.BucketUpper(i)
			break
		}
	}
	// Log2 buckets: a bound of 2*queue-1 is the tightest bucket edge
	// that can hold every legal depth ≤ queue.
	if bound := uint64(2*s.o.queue - 1); maxSeen > bound {
		return fmt.Errorf("queue depth reached the ≤%d bucket, bound %d: admission did not hold", maxSeen, bound)
	}
	log.Printf("queue depth bounded: max bucket ≤%d over %d observations (admission bound %d)", maxSeen, qd.Count, s.o.queue)

	mean := func(h obs.HistogramSnapshot) float64 {
		if h.Count == 0 {
			return 0
		}
		return float64(h.Sum) / float64(h.Count)
	}
	var interMean, batchMean float64
	for _, tp := range tenantPlans {
		if _, ok := hists[obs.HistQueueDepth+"_tenant_"+tp.name]; !ok {
			return fmt.Errorf("no per-tenant queue-depth series for %s", tp.name)
		}
		aw, ok := hists[obs.HistAdmitWait+"_tenant_"+tp.name]
		if !ok {
			return fmt.Errorf("no per-tenant admit-wait series for %s", tp.name)
		}
		m := mean(aw)
		log.Printf("tenant %s: %d dispatches, mean admit wait %.1fms", tp.name, aw.Count, m)
		if tp.interactive {
			interMean = m
		} else if m > batchMean {
			batchMean = m
		}
	}
	// Interactive dispatch is strictly prioritized, so its mean wait may
	// not exceed the worst batch tenant's; the small floor keeps an
	// uncontended run (everything near zero) from flapping.
	if interMean > batchMean && interMean > 5 {
		return fmt.Errorf("interactive admit wait %.1fms exceeds batch %.1fms: batch starved interactive", interMean, batchMean)
	}
	return nil
}

// checkPrometheus asserts the admission histograms actually reach the
// scrape surface operators alert on.
func (s *soak) checkPrometheus() error {
	resp, err := s.client.Get("http://" + s.addr + "/metrics?format=prometheus")
	if err != nil {
		return err
	}
	text, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return fmt.Errorf("prometheus scrape: %d (%v)", resp.StatusCode, err)
	}
	for _, series := range []string{
		"dirsim_" + obs.HistQueueDepth + "_bucket",
		"dirsim_" + obs.HistAdmitWait + "_tenant_gamma_bucket",
		"dirsim_" + obs.HistQueueDepth + "_tenant_alpha_bucket",
	} {
		if !strings.Contains(string(text), series) {
			return fmt.Errorf("prometheus exposition missing %s", series)
		}
	}
	return nil
}

func (s *soak) startDaemon(addr string) error {
	ready := filepath.Join(s.o.dir, "addr")
	os.Remove(ready)
	cmd := exec.Command(s.o.daemon,
		"-addr", addr,
		"-ready-file", ready,
		"-state-dir", s.stateDir,
		"-tenants", s.tenants,
		"-queue", strconv.Itoa(s.o.queue),
		"-executors", strconv.Itoa(s.o.executors),
		"-parallel", "2",
	)
	if s.o.verbose {
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
	} else {
		cmd.Stdout = io.Discard
		cmd.Stderr = io.Discard
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	s.mu.Lock()
	s.cmd = cmd
	s.mu.Unlock()
	for {
		data, err := os.ReadFile(ready)
		if err == nil && len(bytes.TrimSpace(data)) > 0 {
			s.addr = string(bytes.TrimSpace(data))
			return nil
		}
		if time.Now().After(s.deadline) {
			return fmt.Errorf("daemon never became ready: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (s *soak) current() *exec.Cmd {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cmd
}

// kill9 is the crash under test: SIGKILL, no drain, no goodbye.
func (s *soak) kill9() error {
	cmd := s.current()
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	cmd.Wait()
	return nil
}

// drain is the polite exit: SIGTERM must finish in-flight work and
// exit 0.
func (s *soak) drain() error {
	cmd := s.current()
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		return err
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("drain exit: %w", err)
	}
	return nil
}

func (s *soak) stopDaemon() {
	cmd := s.current()
	if cmd != nil && cmd.ProcessState == nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// countCellDocs counts the durable per-cell checkpoints — what the
// revived daemon will not have to re-simulate.
func (s *soak) countCellDocs() int {
	files, _ := filepath.Glob(filepath.Join(s.stateDir, "results", "cells", "*.json"))
	return len(files)
}

func (s *soak) getJSON(path string, v any) (int, error) {
	resp, err := s.client.Get("http://" + s.addr + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if v != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(data, v); err != nil {
			return resp.StatusCode, fmt.Errorf("bad JSON from %s: %w (%.120s)", path, err, data)
		}
	}
	return resp.StatusCode, nil
}

func (s *soak) metricsJSON() (obs.Snapshot, error) {
	var snap obs.Snapshot
	code, err := s.getJSON("/metrics", &snap)
	if err != nil {
		return snap, err
	}
	if code != http.StatusOK {
		return snap, fmt.Errorf("/metrics: %d", code)
	}
	return snap, nil
}
