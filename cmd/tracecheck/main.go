// Command tracecheck validates observability artifacts — the flight
// recorder's two trace formats and the daemon's Prometheus exposition —
// so smoke tests can assert "this artifact is well-formed" without
// depending on external tooling.
//
// Formats (-format):
//
//	ndjson  one JSON object per line with kind/seq fields; seq must be
//	        non-decreasing within each (pid, tid) track
//	chrome  a Chrome trace-event JSON object (Perfetto-loadable): every
//	        event named, ph one of M/X/i, ts non-decreasing per track
//	spans   fabric spans from internal/otrace, in either wire form
//	        (NDJSON span rows or a Chrome doc with trace/id args):
//	        ids unique, every parent resolves (no orphans), and with
//	        -min-services the set must span that many services — how
//	        the cluster smoke asserts a merged fleet trace really
//	        contains all daemons
//	prom    Prometheus text exposition 0.0.4, via the in-repo linter
//
// The input is a file argument or stdin. Exit status 0 means valid (and
// at least -min-events events for the trace formats); anything else is
// reported on stderr with exit status 1.
//
// Usage:
//
//	tracecheck -format ndjson -min-events 1 trace.ndjson
//	tracecheck -format spans -min-services 3 fleet.trace
//	curl -s "$DAEMON/metrics?format=prometheus" | tracecheck -format prom
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"dirsim/internal/obs"
	"dirsim/internal/otrace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	format := flag.String("format", "", "artifact format: ndjson, chrome, spans or prom")
	minEvents := flag.Int("min-events", 1, "minimum trace events required (ndjson/chrome/spans)")
	minServices := flag.Int("min-services", 1, "minimum distinct span services required (spans)")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "stdin"
	if flag.NArg() > 1 {
		log.Fatal("at most one input file")
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
		name = flag.Arg(0)
	}

	var n int
	var err error
	switch *format {
	case "ndjson":
		n, err = checkNDJSON(in, *minEvents)
	case "chrome":
		n, err = checkChrome(in, *minEvents)
	case "spans":
		n, err = checkSpans(in, *minEvents, *minServices)
	case "prom":
		err = obs.LintPrometheus(in)
	default:
		log.Fatalf("unknown -format %q (want ndjson, chrome, spans or prom)", *format)
	}
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	if *format == "prom" {
		fmt.Printf("%s: valid prometheus exposition\n", name)
		return
	}
	fmt.Printf("%s: valid %s trace, %d events\n", name, *format, n)
}

// track keys trace events by their Chrome-style coordinates.
type track struct{ pid, tid int }

// checkNDJSON validates one event object per line and the per-track
// ordering contract the flight exporter guarantees.
func checkNDJSON(r io.Reader, minEvents int) (int, error) {
	type row struct {
		Pid  int     `json:"pid"`
		Tid  int     `json:"tid"`
		Seq  *uint64 `json:"seq"`
		Kind string  `json:"kind"`
	}
	last := map[track]uint64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	n := 0
	for line := 1; sc.Scan(); line++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rw row
		if err := json.Unmarshal(sc.Bytes(), &rw); err != nil {
			return n, fmt.Errorf("line %d: not a JSON object: %v", line, err)
		}
		if rw.Kind == "" {
			return n, fmt.Errorf("line %d: missing kind", line)
		}
		if rw.Seq == nil {
			return n, fmt.Errorf("line %d: missing seq", line)
		}
		k := track{rw.Pid, rw.Tid}
		if prev, ok := last[k]; ok && *rw.Seq < prev {
			return n, fmt.Errorf("line %d: seq %d < %d earlier on pid %d tid %d — events out of canonical order",
				line, *rw.Seq, prev, rw.Pid, rw.Tid)
		}
		last[k] = *rw.Seq
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n < minEvents {
		return n, fmt.Errorf("%d events, want at least %d", n, minEvents)
	}
	return n, nil
}

// checkChrome validates the trace-event JSON shape Perfetto expects and
// the monotonic-timestamps-per-track property the exporter guarantees.
func checkChrome(r io.Reader, minEvents int) (int, error) {
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   *uint64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return 0, fmt.Errorf("not a trace-event JSON object: %v", err)
	}
	if doc.TraceEvents == nil {
		return 0, fmt.Errorf("missing traceEvents array")
	}
	last := map[track]uint64{}
	n := 0
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			return n, fmt.Errorf("event %d: missing name", i)
		}
		switch e.Ph {
		case "M":
			continue // metadata carries no timestamp
		case "X", "i":
		default:
			return n, fmt.Errorf("event %d (%s): unexpected ph %q", i, e.Name, e.Ph)
		}
		if e.Ts == nil {
			return n, fmt.Errorf("event %d (%s): missing ts", i, e.Name)
		}
		k := track{e.Pid, e.Tid}
		if prev, ok := last[k]; ok && *e.Ts < prev {
			return n, fmt.Errorf("event %d (%s): ts %d < %d earlier on pid %d tid %d — timestamps not monotonic per track",
				i, e.Name, *e.Ts, prev, e.Pid, e.Tid)
		}
		last[k] = *e.Ts
		n++
	}
	if n < minEvents {
		return n, fmt.Errorf("%d events, want at least %d", n, minEvents)
	}
	return n, nil
}

// spanRec is the format-independent view checkSpans validates: both
// wire forms reduce to (trace, id, parent, service).
type spanRec struct {
	trace, id, parent, service string
}

// checkSpans validates a fabric span set in either wire form. The
// invariants are the ones internal/otrace guarantees for exported sets:
// span ids unique, every parent id present in the set (a merged fleet
// trace with a dangling parent means a daemon's spans were lost), and
// the set covering at least minServices distinct services.
func checkSpans(r io.Reader, minEvents, minServices int) (int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, err
	}
	// Both forms start with '{', so sniff by structure: only a Chrome
	// document is one object with a traceEvents array (NDJSON input is
	// many objects, which fails the whole-input unmarshal).
	var probe struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	var recs []spanRec
	if json.Unmarshal(data, &probe) == nil && probe.TraceEvents != nil {
		recs, err = chromeSpans(data)
	} else {
		recs, err = ndjsonSpans(data)
	}
	if err != nil {
		return 0, err
	}
	ids := make(map[string]bool, len(recs))
	services := map[string]bool{}
	for i, s := range recs {
		if s.trace == "" || s.id == "" || s.service == "" {
			return len(recs), fmt.Errorf("span %d: missing trace, id or service", i)
		}
		if ids[s.id] {
			return len(recs), fmt.Errorf("span %d: duplicate id %s — set not deduplicated", i, s.id)
		}
		ids[s.id] = true
		services[s.service] = true
	}
	for i, s := range recs {
		if s.parent != "" && !ids[s.parent] {
			return len(recs), fmt.Errorf("span %d (%s): orphan — parent %s not in the set", i, s.id, s.parent)
		}
	}
	if len(recs) < minEvents {
		return len(recs), fmt.Errorf("%d spans, want at least %d", len(recs), minEvents)
	}
	if len(services) < minServices {
		return len(recs), fmt.Errorf("spans from %d services, want at least %d", len(services), minServices)
	}
	return len(recs), nil
}

// ndjsonSpans reads the NDJSON span form via the otrace parser, so
// tracecheck enforces exactly the contract the exporter writes.
func ndjsonSpans(data []byte) ([]spanRec, error) {
	spans, err := otrace.ReadNDJSON(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	recs := make([]spanRec, len(spans))
	for i, s := range spans {
		if s.End < s.Start {
			return nil, fmt.Errorf("span %s: end %d before start %d", s.ID(), s.End, s.Start)
		}
		recs[i] = spanRec{trace: s.Trace, id: s.ID(), parent: s.Parent, service: s.Service}
	}
	return recs, nil
}

// chromeSpans extracts fabric spans from a Chrome trace document:
// events carrying trace and id args. Spliced flight-recorder events
// carry neither and pass through unchecked — the chrome format covers
// their shape.
func chromeSpans(data []byte) ([]spanRec, error) {
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				Trace  string `json:"trace"`
				ID     string `json:"id"`
				Parent string `json:"parent"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("not a trace-event JSON object: %v", err)
	}
	var recs []spanRec
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Args.Trace == "" || e.Args.ID == "" {
			continue
		}
		service, _, ok := strings.Cut(e.Args.ID, "#")
		if !ok {
			return nil, fmt.Errorf("span %s: id %q not service#seq", e.Name, e.Args.ID)
		}
		recs = append(recs, spanRec{
			trace: e.Args.Trace, id: e.Args.ID,
			parent: e.Args.Parent, service: service,
		})
	}
	return recs, nil
}
