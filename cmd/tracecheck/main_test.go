package main

import (
	"strings"
	"testing"
)

func TestCheckNDJSON(t *testing.T) {
	good := `{"pid":0,"tid":1,"seq":0,"kind":"instr","cache":0}
{"pid":0,"tid":1,"seq":64,"kind":"rm-blk-cln","cache":1}
{"pid":1,"tid":0,"seq":3,"kind":"span","phase":"decode"}
`
	n, err := checkNDJSON(strings.NewReader(good), 1)
	if err != nil || n != 3 {
		t.Fatalf("good trace: n=%d err=%v", n, err)
	}

	cases := map[string]string{
		"missing kind":  `{"pid":0,"tid":0,"seq":1}`,
		"missing seq":   `{"pid":0,"tid":0,"kind":"instr"}`,
		"not JSON":      `nope`,
		"seq regressed": "{\"pid\":0,\"tid\":0,\"seq\":9,\"kind\":\"a\"}\n{\"pid\":0,\"tid\":0,\"seq\":4,\"kind\":\"a\"}",
	}
	for name, in := range cases {
		if _, err := checkNDJSON(strings.NewReader(in), 0); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Regressions on *different* tracks are legal: canonical order is per
	// (pid, tid).
	ok := "{\"pid\":0,\"tid\":0,\"seq\":9,\"kind\":\"a\"}\n{\"pid\":1,\"tid\":0,\"seq\":4,\"kind\":\"a\"}"
	if _, err := checkNDJSON(strings.NewReader(ok), 2); err != nil {
		t.Errorf("cross-track seq drop rejected: %v", err)
	}
	if _, err := checkNDJSON(strings.NewReader(good), 5); err == nil {
		t.Error("min-events not enforced")
	}
}

func TestCheckChrome(t *testing.T) {
	good := `{"traceEvents":[
{"name":"process_name","ph":"M","pid":0,"args":{"name":"j"}},
{"name":"decode","ph":"X","ts":0,"dur":64,"pid":0,"tid":0},
{"name":"instr","ph":"i","ts":3,"pid":0,"tid":1,"s":"t"}
],"displayTimeUnit":"ms"}`
	n, err := checkChrome(strings.NewReader(good), 2)
	if err != nil || n != 2 {
		t.Fatalf("good trace: n=%d err=%v (metadata must not count)", n, err)
	}

	cases := map[string]string{
		"no traceEvents": `{"foo":1}`,
		"bad ph":         `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		"missing name":   `{"traceEvents":[{"ph":"i","ts":0,"pid":0,"tid":0}]}`,
		"missing ts":     `{"traceEvents":[{"name":"x","ph":"i","pid":0,"tid":0}]}`,
		"ts regressed": `{"traceEvents":[
{"name":"a","ph":"i","ts":9,"pid":0,"tid":0},
{"name":"b","ph":"i","ts":4,"pid":0,"tid":0}]}`,
	}
	for name, in := range cases {
		if _, err := checkChrome(strings.NewReader(in), 0); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := checkChrome(strings.NewReader(good), 5); err == nil {
		t.Error("min-events not enforced")
	}
}
