// Command sweep runs a grid of (workload × machine size × scheme) cells,
// each replicated across seeds, and emits one CSV row per cell with the
// mean and 95% confidence interval of bus cycles per reference — the raw
// material for scaling plots.
//
// Usage:
//
//	sweep -workloads pops,thor,pero -schemes dir0b,dirnnb,dragon \
//	      -cpus 4,8,16 -refs 300000 -seeds 3 > sweep.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/sim"
	"dirsim/internal/study"
	"dirsim/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	workloads := flag.String("workloads", "pops,thor,pero", "comma-separated workload presets")
	schemes := flag.String("schemes", "dir1nb,wti,dir0b,dragon", "comma-separated schemes")
	cpus := flag.String("cpus", "4", "comma-separated processor counts")
	refs := flag.Int("refs", 300_000, "references per trace")
	seeds := flag.Int("seeds", 3, "replications per cell")
	flag.Parse()
	if err := run(os.Stdout, *workloads, *schemes, *cpus, *refs, *seeds); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, workloads, schemes, cpus string, refs, seeds int) error {
	if refs <= 0 || seeds <= 0 {
		return fmt.Errorf("refs and seeds must be positive")
	}
	var cpuList []int
	for _, c := range strings.Split(cpus, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil || n < 1 {
			return fmt.Errorf("bad cpu count %q", c)
		}
		cpuList = append(cpuList, n)
	}
	schemeList := strings.Split(schemes, ",")
	seedList := study.Seeds(1, seeds)
	pip := bus.Pipelined()

	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "cpus", "scheme", "refs", "seeds",
		"cycles_per_ref_mean", "cycles_per_ref_ci95",
	}); err != nil {
		return err
	}
	for _, wlName := range strings.Split(workloads, ",") {
		base, err := preset(strings.TrimSpace(wlName), refs)
		if err != nil {
			return err
		}
		for _, n := range cpuList {
			cfg := base
			cfg.CPUs = n
			sums, err := study.SeedSweep(cfg, seedList, schemeList,
				coherence.Config{Caches: n}, sim.Options{}, study.CyclesPerRef(pip))
			if err != nil {
				return err
			}
			for _, s := range sums {
				if err := cw.Write([]string{
					base.Name, strconv.Itoa(n), s.Scheme,
					strconv.Itoa(refs), strconv.Itoa(seeds),
					fmt.Sprintf("%.6f", s.Mean),
					fmt.Sprintf("%.6f", s.CI95),
				}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func preset(name string, refs int) (tracegen.Config, error) {
	switch strings.ToLower(name) {
	case "pops":
		return tracegen.POPS(refs), nil
	case "thor":
		return tracegen.THOR(refs), nil
	case "pero":
		return tracegen.PERO(refs), nil
	default:
		return tracegen.Config{}, fmt.Errorf("unknown workload %q", name)
	}
}
