// Command sweep runs a grid of (workload × machine size × scheme) cells,
// each replicated across seeds, and emits one CSV row per cell with the
// mean and 95% confidence interval of bus cycles per reference — the raw
// material for scaling plots.
//
// The grid is flattened into one job per (cell, seed) and executed on the
// shared runner pool; rows stream out as their cell's replications
// complete, in grid order, whatever the worker count.
//
// The run is resilient: a failed or panicking cell never aborts the
// sweep. Surviving cells stream to the (crash-safely written) CSV, every
// failure lands in a machine-readable manifest, completed cells are
// checkpointed as they finish, and -resume replays only the missing or
// failed cells — producing output byte-identical to an uninterrupted
// clean run. Deterministic fault-injection knobs (-fault-*) exercise all
// of this on demand.
//
// Usage:
//
//	sweep -workloads pops,thor,pero -schemes dir0b,dirnnb,dragon \
//	      -cpus 4,8,16 -refs 300000 -seeds 3 -parallel 4 > sweep.csv
//	sweep ... -o sweep.csv -checkpoint sweep.ck.json -manifest sweep.failures.json
//	sweep ... -o sweep.csv -checkpoint sweep.ck.json -resume
//	sweep ... -remote http://127.0.0.1:8023 > sweep.csv
//	sweep ... -cluster peers.json > sweep.csv
//	sweep ... -cluster peers.json -trace fleet.json > sweep.csv
//
// With -remote the grid is submitted to a dirsimd daemon as one sweep
// spec and rows are rebuilt from the returned result document — byte
// identical to a local run of the same grid. Fault-injection and
// checkpoint flags are local-execution concerns and refuse to combine
// with -remote.
//
// With -cluster the grid is partitioned across a dirsimd fleet: each
// cell is submitted to its rendezvous-hash owner, hedged onto the next
// peer after -hedge, and failed over when a daemon dies mid-sweep. Rows
// still stream in grid order and the CSV is byte-identical to a
// single-node or local run of the same grid. Adding -trace records the
// client's cell and attempt spans, collects every daemon's fabric spans
// for each cell afterwards (trace id = cell content hash), and writes
// one merged fleet trace — hedge winners and losers, peer cache
// fetches, and crash-replayed jobs all visible under one timeline.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"dirsim/internal/atomicio"
	"dirsim/internal/bus"
	"dirsim/internal/cluster"
	"dirsim/internal/faults"
	"dirsim/internal/flight"
	"dirsim/internal/obs"
	"dirsim/internal/otrace"
	"dirsim/internal/remote"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/spec"
	"dirsim/internal/study"
	"dirsim/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	workloads := flag.String("workloads", "pops,thor,pero", "comma-separated workload presets")
	schemes := flag.String("schemes", "dir1nb,wti,dir0b,dragon", "comma-separated schemes")
	cpus := flag.String("cpus", "4", "comma-separated processor counts")
	refs := flag.Int("refs", 300_000, "references per trace")
	seeds := flag.Int("seeds", 3, "replications per cell")
	parallel := flag.Int("parallel", 1, "concurrent simulation jobs (1 = sequential)")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline (0 = no limit)")
	stallTimeout := flag.Duration("stall-timeout", 0, "fail a job when no progress for this long (0 = off)")
	retries := flag.Int("retries", 2, "extra attempts for jobs failing with transient errors")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "backoff before the first retry (doubles per attempt, jittered)")
	out := flag.String("o", "-", "output CSV file (written atomically), or - for stdout")
	manifest := flag.String("manifest", "", "write a JSON failure manifest to this file")
	checkpoint := flag.String("checkpoint", "", "save completed cells to this JSON file as they finish")
	resume := flag.Bool("resume", false, "load -checkpoint and re-run only missing or failed cells")
	remoteURL := flag.String("remote", "", "run the grid on a dirsimd daemon at this base URL instead of locally")
	clusterFile := flag.String("cluster", "", "run the grid on the dirsimd fleet this membership file describes (cells routed to their rendezvous owners)")
	hedge := flag.Duration("hedge", 2*time.Second, "with -cluster, try the next peer concurrently when the owner has not answered after this long (0 = off)")
	fleetTrace := flag.String("trace", "", "with -cluster, write one merged fleet trace of the sweep here (.json = Chrome trace, .ndjson = span rows): client spans plus every daemon's spans for each cell")
	apiKey := flag.String("api-key", os.Getenv("DIRSIM_API_KEY"), "API key for -remote daemons running with tenants configured (default $DIRSIM_API_KEY)")
	progress := flag.Bool("progress", false, "report job and throughput counts on stderr")
	pprofFile := flag.String("pprof", "", "write a CPU profile to this file")
	traceOut := flag.String("trace-out", "", "write a flight trace of every job here (.json = Chrome trace, .ndjson = one event per line)")
	traceSample := flag.Int("trace-sample", flight.DefaultSample, "with -trace-out, record every Nth reference's protocol events (0 = spans only)")
	spans := flag.Bool("spans", false, "with -trace-out, also record run-phase spans")
	faultSeed := flag.Int64("fault-seed", 1, "seed for deterministic fault injection")
	faultCorrupt := flag.Float64("fault-corrupt", 0, "per-reference bit-flip probability in fault-injected jobs")
	faultTruncate := flag.Int("fault-truncate", 0, "fault-injected jobs lose their trace after this many references")
	faultTransient := flag.Int("fault-transient", 0, "every job fails with a transient error on its first N attempts")
	faultPanic := flag.String("fault-panic", "", "comma-separated job indices that panic mid-run")
	faultJobs := flag.String("fault-jobs", "", "comma-separated job indices to inject trace faults into (default: all)")
	flag.Parse()

	// A signal cancels the sweep between cells; the explicit flush calls
	// below (not defers — log.Fatal skips defers) then commit the partial
	// artifacts (CPU profile, collected fleet spans) before exit.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var pf *atomicio.File
	if *pprofFile != "" {
		f, err := atomicio.Create(*pprofFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Abort()
			log.Fatal(err)
		}
		pf = f
	}
	var fleetStore *otrace.Store
	if *fleetTrace != "" {
		fleetStore = otrace.NewStore(0)
	}
	// flush commits the run-scoped artifacts exactly once. Every exit
	// path calls it explicitly — an interrupted sweep still lands its
	// profile and whatever fleet spans were collected before the signal.
	var flushOnce sync.Once
	var flushErr error
	flush := func() error {
		flushOnce.Do(func() {
			if pf != nil {
				pprof.StopCPUProfile()
				if err := pf.Commit(); err != nil {
					flushErr = err
				}
			}
			if fleetStore != nil && fleetStore.Added() > 0 {
				if err := writeFleetTrace(*fleetTrace, fleetStore); err != nil && flushErr == nil {
					flushErr = err
				}
			}
		})
		return flushErr
	}
	fatal := func(err error) {
		flush() //nolint:errcheck // already failing; the run error wins
		log.Fatal(err)
	}

	o := options{
		workloads: *workloads, schemes: *schemes, cpus: *cpus,
		refs: *refs, seeds: *seeds, parallel: *parallel,
		jobTimeout: *jobTimeout, stallTimeout: *stallTimeout,
		retries: *retries, retryBase: *retryBase, sleep: time.Sleep,
		manifest: *manifest, checkpoint: *checkpoint, resume: *resume,
		faultSeed: *faultSeed, faultCorrupt: *faultCorrupt,
		faultTruncate: *faultTruncate, faultTransient: *faultTransient,
		faultPanic: *faultPanic, faultJobs: *faultJobs,
		remote: *remoteURL, apiKey: *apiKey,
		cluster: *clusterFile, hedge: *hedge,
		fleetTrace: *fleetTrace, fleetStore: fleetStore,
		progress: *progress, progressW: os.Stderr,
		traceOut: *traceOut, traceSample: *traceSample, spans: *spans,
	}

	var w io.Writer = os.Stdout
	var af *atomicio.File
	if *out != "-" {
		f, err := atomicio.Create(*out)
		if err != nil {
			fatal(err)
		}
		af = f
		w = f
	}
	err := run(ctx, w, o)
	switch {
	case err == nil:
		if af != nil {
			if cerr := af.Commit(); cerr != nil {
				fatal(cerr)
			}
		}
		if ferr := flush(); ferr != nil {
			log.Fatal(ferr)
		}
	case errors.Is(err, errDegraded):
		// Partial results are still results: commit them, then report
		// the degradation and exit nonzero.
		if af != nil {
			if cerr := af.Commit(); cerr != nil {
				fatal(cerr)
			}
		}
		if ferr := flush(); ferr != nil {
			log.Print(ferr)
		}
		log.Print(err)
		os.Exit(1)
	default:
		if af != nil {
			af.Abort()
		}
		fatal(err)
	}
}

// errDegraded marks a sweep that finished with failed cells: outputs are
// valid and written, but incomplete.
var errDegraded = errors.New("degraded run")

// options collects the command's flags.
type options struct {
	workloads, schemes, cpus string
	refs, seeds, parallel    int

	jobTimeout, stallTimeout time.Duration
	retries                  int
	retryBase                time.Duration
	sleep                    func(time.Duration)

	manifest, checkpoint string
	resume               bool

	faultSeed      int64
	faultCorrupt   float64
	faultTruncate  int
	faultTransient int
	faultPanic     string
	faultJobs      string

	remote  string
	apiKey  string
	cluster string
	hedge   time.Duration

	// fleetTrace is the -trace output path; fleetStore (created by main,
	// which also flushes it on every exit path) accumulates the client's
	// own spans and the spans fetched from the daemons after the sweep.
	fleetTrace string
	fleetStore *otrace.Store

	progress  bool
	progressW io.Writer

	traceOut    string
	traceSample int
	spans       bool
}

// cellMeta names one output cell: a (workload, cpus) grid point. Its
// jobs are the seeds×schemes replications at indices
// [cell*seeds, (cell+1)*seeds).
type cellMeta struct {
	workload string
	cpus     int
}

// checkpointFile is the periodic on-disk record of completed jobs: the
// grid parameters it belongs to, plus each finished job's per-scheme
// metric values keyed by global job index. float64 values survive the
// JSON round trip exactly, which is what makes resumed output
// byte-identical to a clean run.
type checkpointFile struct {
	Workloads string               `json:"workloads"`
	Schemes   string               `json:"schemes"`
	Cpus      string               `json:"cpus"`
	Refs      int                  `json:"refs"`
	Seeds     int                  `json:"seeds"`
	Jobs      map[string][]float64 `json:"jobs"`
}

func run(ctx context.Context, w io.Writer, o options) error {
	if o.refs <= 0 || o.seeds <= 0 {
		return fmt.Errorf("refs and seeds must be positive")
	}
	var cpuList []int
	for _, c := range strings.Split(o.cpus, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil || n < 1 {
			return fmt.Errorf("bad cpu count %q", c)
		}
		cpuList = append(cpuList, n)
	}
	schemeList := strings.Split(o.schemes, ",")
	var workloadList []string
	for _, wl := range strings.Split(o.workloads, ",") {
		workloadList = append(workloadList, strings.TrimSpace(wl))
	}
	pip := bus.Pipelined()
	metric := study.CyclesPerRef(pip)

	// Resolve canonical scheme names up front: rows rebuilt from a
	// checkpoint must print exactly the names a live run would, and a
	// bogus scheme should fail before any simulation starts.
	canon, err := spec.CanonicalSchemes(schemeList, cpuList[0])
	if err != nil {
		return err
	}

	// Flatten the grid through the shared spec types: cells are ordered
	// (workload, cpus, seed), so cell index i belongs to output cell
	// i/seeds and seed i%seeds — the exact grid a daemon would expand
	// from the same parameters.
	sw := spec.Sweep{
		Workloads: workloadList, Schemes: schemeList, CPUs: cpuList,
		Refs: o.refs, Seeds: o.seeds,
	}
	specCells, err := sw.Cells()
	if err != nil {
		return err
	}
	var cells []cellMeta
	for i := 0; i < len(specCells); i += o.seeds {
		cells = append(cells, cellMeta{
			workload: specCells[i].Trace.Name,
			cpus:     specCells[i].Trace.CPUs,
		})
	}
	allJobs := make([]runner.Job, len(specCells))
	for i, c := range specCells {
		j, err := c.Job()
		if err != nil {
			return err
		}
		allJobs[i] = j
	}

	if o.remote != "" && o.cluster != "" {
		return fmt.Errorf("-remote and -cluster are mutually exclusive: a cluster file already names the daemons")
	}
	if o.remote != "" || o.cluster != "" {
		mode := "-remote"
		if o.cluster != "" {
			mode = "-cluster"
		}
		switch {
		case o.faultCorrupt > 0 || o.faultTruncate > 0 || o.faultTransient > 0 ||
			o.faultPanic != "" || o.faultJobs != "":
			return fmt.Errorf("%s cannot be combined with fault injection: faults exercise the local runner", mode)
		case o.checkpoint != "" || o.resume:
			return fmt.Errorf("%s cannot be combined with -checkpoint/-resume: the daemon's result cache already makes repeats cheap", mode)
		case o.traceOut != "":
			return fmt.Errorf("%s cannot be combined with -trace-out: run the daemon with -trace-sample and fetch /v1/jobs/{id}/trace instead", mode)
		}
	}
	if o.fleetTrace != "" && o.cluster == "" {
		return fmt.Errorf("-trace requires -cluster: a single daemon's trace is served by GET /v1/jobs/{id}/trace")
	}

	// values[i] holds job i's per-scheme metric values — prefilled from
	// the checkpoint on -resume, filled by OnResult otherwise. failed[i]
	// marks jobs whose final attempt errored.
	values := make([][]float64, len(allJobs))
	failed := make([]bool, len(allJobs))
	ck := checkpointFile{
		Workloads: o.workloads, Schemes: o.schemes, Cpus: o.cpus,
		Refs: o.refs, Seeds: o.seeds, Jobs: map[string][]float64{},
	}
	if o.resume {
		if o.checkpoint == "" {
			return fmt.Errorf("-resume requires -checkpoint")
		}
		data, err := os.ReadFile(o.checkpoint)
		if err != nil {
			return fmt.Errorf("-resume: %w", err)
		}
		var old checkpointFile
		if err := json.Unmarshal(data, &old); err != nil {
			return fmt.Errorf("-resume: corrupt checkpoint %s: %w", o.checkpoint, err)
		}
		if old.Workloads != o.workloads || old.Schemes != o.schemes ||
			old.Cpus != o.cpus || old.Refs != o.refs || old.Seeds != o.seeds {
			return fmt.Errorf("-resume: checkpoint %s was written by a different grid", o.checkpoint)
		}
		for k, vals := range old.Jobs {
			i, err := strconv.Atoi(k)
			if err != nil || i < 0 || i >= len(allJobs) || len(vals) != len(schemeList) {
				return fmt.Errorf("-resume: corrupt checkpoint entry %q in %s", k, o.checkpoint)
			}
			values[i] = vals
			ck.Jobs[k] = vals
		}
	}

	// Fault injection: trace faults scope to -fault-jobs (default all),
	// panics to -fault-panic, both keyed by global job index so a resumed
	// run with no fault flags replays the same cells cleanly.
	faultSet, err := parseIndexSet(o.faultJobs)
	if err != nil {
		return fmt.Errorf("-fault-jobs: %w", err)
	}
	panicSet, err := parseIndexSet(o.faultPanic)
	if err != nil {
		return fmt.Errorf("-fault-panic: %w", err)
	}
	injectTrace := o.faultCorrupt > 0 || o.faultTruncate > 0
	wrapSource := func(gi int, src func() (trace.Reader, error)) func() (trace.Reader, error) {
		cfg := faults.Config{Seed: o.faultSeed + int64(gi)}
		active := false
		if injectTrace && (faultSet == nil || faultSet[gi]) {
			cfg.CorruptProb = o.faultCorrupt
			cfg.TruncateAfter = o.faultTruncate
			active = true
		}
		if panicSet[gi] {
			cfg.PanicAfter = o.refs/2 + 1
			active = true
		}
		if !active {
			return src
		}
		return func() (trace.Reader, error) {
			rd, err := src()
			if err != nil {
				return nil, err
			}
			return faults.Wrap(rd, cfg), nil
		}
	}

	// Submit only jobs without checkpointed values; submitIdx maps pool
	// index back to global grid index.
	var submit []runner.Job
	var submitIdx []int
	for gi := range allJobs {
		if values[gi] != nil {
			continue
		}
		j := allJobs[gi]
		j.Source = wrapSource(gi, j.Source)
		submit = append(submit, j)
		submitIdx = append(submitIdx, gi)
	}

	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "cpus", "scheme", "refs", "seeds",
		"cycles_per_ref_mean", "cycles_per_ref_ci95",
	}); err != nil {
		return err
	}

	// Rows stream in grid order: OnResult/OnError arrive in submit order
	// (which preserves grid order), so cells resolve front to back. A
	// cell flushes the moment its last seed lands; a cell with any failed
	// seed emits no rows and is skipped — its failure is in the manifest
	// and a -resume replays it.
	var rowErr error
	nextCell := 0
	emit := func() {
		if rowErr != nil {
			return
		}
		for nextCell < len(cells) {
			lo := nextCell * o.seeds
			cellFailed := false
			complete := true
			for j := lo; j < lo+o.seeds; j++ {
				if failed[j] {
					cellFailed = true
				} else if values[j] == nil {
					complete = false
				}
			}
			if cellFailed {
				nextCell++
				continue
			}
			if !complete {
				return
			}
			c := cells[nextCell]
			for si := range schemeList {
				vals := make([]float64, o.seeds)
				for s := 0; s < o.seeds; s++ {
					vals[s] = values[lo+s][si]
				}
				sum := study.Summarise(canon[si], vals)
				if err := cw.Write([]string{
					c.workload, strconv.Itoa(c.cpus), sum.Scheme,
					strconv.Itoa(o.refs), strconv.Itoa(o.seeds),
					fmt.Sprintf("%.6f", sum.Mean),
					fmt.Sprintf("%.6f", sum.CI95),
				}); err != nil {
					rowErr = err
					return
				}
			}
			cw.Flush()
			if rowErr = cw.Error(); rowErr != nil {
				return
			}
			nextCell++
		}
	}
	saveCheckpoint := func() {
		if o.checkpoint == "" || rowErr != nil {
			return
		}
		data, err := json.MarshalIndent(ck, "", "  ")
		if err != nil {
			rowErr = err
			return
		}
		if err := atomicio.WriteFile(o.checkpoint, append(data, '\n')); err != nil {
			rowErr = err
		}
	}

	// Remote mode: ship the whole grid to the daemon as one sweep spec,
	// rebuild priceable results from the document, and stream the same
	// rows the local path would — byte for byte.
	if o.remote != "" {
		// Daemon saturation (429 quota/queue-full, 503 restart) is
		// absorbed on the same deterministic retry schedule the local
		// runner uses, honouring the daemon's Retry-After.
		client := &remote.Client{
			BaseURL: o.remote,
			APIKey:  o.apiKey,
			Retry:   runner.RetryPolicy{Max: o.retries + 1, Base: o.retryBase, Seed: 1},
			Sleep:   o.sleep,
		}
		results, err := client.RunCells(ctx, spec.Request{Sweep: &sw})
		if err != nil {
			return err
		}
		for gi, rs := range results {
			vals := make([]float64, len(rs))
			for k, r := range rs {
				vals[k] = metric(r)
			}
			values[gi] = vals
		}
		emit()
		if rowErr != nil {
			return rowErr
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		if o.manifest != "" {
			// A remote run either succeeds whole or fails the command:
			// the manifest records a clean slate for tooling that expects
			// one.
			if err := runner.NewManifest("sweep", len(allJobs)).Write(o.manifest); err != nil {
				return err
			}
		}
		return nil
	}

	// Cluster mode: partition the grid across the fleet by cell
	// ownership. Each cell goes to its rendezvous-hash owner (hedged and
	// failed over per the cluster client), results convert through the
	// same remote.Results path, and emit() streams rows in grid order
	// regardless of completion order — so the CSV is byte-identical to a
	// single-node or local run.
	if o.cluster != "" {
		mem, err := cluster.LoadMembership(o.cluster)
		if err != nil {
			return err
		}
		health := cluster.NewHealth()
		// With -trace the client records its own cell/attempt spans into
		// the shared store; the trace id of each cell is its content hash,
		// which is how the daemons' spans are found again afterwards.
		var tracer *otrace.Tracer
		clusterMetrics := obs.NewMetrics()
		if o.fleetStore != nil {
			tracer = otrace.New("sweep", func() int64 { return time.Now().UnixNano() }, o.fleetStore, clusterMetrics)
		}
		cc := &cluster.Client{
			Membership: mem,
			Router:     cluster.NewRouter(mem, health),
			Health:     health,
			APIKey:     o.apiKey,
			Retry:      runner.RetryPolicy{Max: o.retries + 1, Base: o.retryBase, Seed: 1},
			Sleep:      o.sleep,
			HedgeDelay: o.hedge,
			After:      time.After,
			Tracer:     tracer,
			Metrics:    clusterMetrics,
		}
		// -parallel is per-daemon concurrency; the fleet multiplies it.
		workers := o.parallel * len(mem.Peers)
		var convErr error
		runErr := cc.RunCells(ctx, specCells, workers, func(gi int, doc *spec.ResultDoc, err error) {
			// onDone is serialized by the cluster client. Failures are
			// reported by RunCells's return; conversion errors are ours.
			if err != nil || convErr != nil {
				return
			}
			rs, err := remote.Results(doc, specCells[gi:gi+1])
			if err != nil {
				convErr = fmt.Errorf("cell %d (%s): %w", gi, specCells[gi].Label(), err)
				return
			}
			vals := make([]float64, len(rs[0]))
			for k, r := range rs[0] {
				vals[k] = metric(r)
			}
			values[gi] = vals
			emit()
		})
		switch {
		case runErr != nil:
			return runErr
		case convErr != nil:
			return convErr
		case rowErr != nil:
			return rowErr
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		if o.manifest != "" {
			// Like -remote: a clustered run succeeds whole or fails the
			// command, so the manifest records a clean slate.
			if err := runner.NewManifest("sweep", len(allJobs)).Write(o.manifest); err != nil {
				return err
			}
		}
		if o.fleetStore != nil {
			collectFleetSpans(ctx, mem, specCells, o.fleetStore)
		}
		return nil
	}

	man := runner.NewManifest("sweep", len(allJobs))
	ropts := runner.Options{
		Workers:      o.parallel,
		JobTimeout:   o.jobTimeout,
		StallTimeout: o.stallTimeout,
		Retry: runner.RetryPolicy{
			Max:  o.retries + 1,
			Base: o.retryBase,
			Seed: o.faultSeed,
		},
		Sleep: o.sleep,
		OnResult: func(si int, rs []sim.Result) {
			gi := submitIdx[si]
			vals := make([]float64, len(rs))
			for k, r := range rs {
				vals[k] = metric(r)
			}
			values[gi] = vals
			ck.Jobs[strconv.Itoa(gi)] = vals
			saveCheckpoint()
			emit()
		},
		OnError: func(si int, err error) {
			gi := submitIdx[si]
			failed[gi] = true
			man.Record(gi, allJobs[gi].Label, err)
			emit()
		},
	}
	// One recorder per pool job, created fresh per attempt so a retried
	// job's trace is always the attempt that produced its results. Pid is
	// the global grid index, which groups each job's tracks in the export.
	var recorders []*flight.Recorder
	if o.traceOut != "" {
		recorders = make([]*flight.Recorder, len(submit))
		ropts.TraceFor = func(index, attempt int) *flight.Recorder {
			gi := submitIdx[index]
			rec := flight.New(flight.Options{
				Sample: o.traceSample, Spans: o.spans,
				Pid: gi, Label: allJobs[gi].Label,
			})
			recorders[index] = rec
			return rec
		}
	}
	if o.faultTransient > 0 {
		n := o.faultTransient
		ropts.TransientFault = func(si, attempt int) error {
			if attempt <= n {
				return runner.Transient(fmt.Errorf("injected transient fault (attempt %d)", attempt))
			}
			return nil
		}
	}
	if o.progress {
		pw := o.progressW
		if pw == nil {
			pw = os.Stderr
		}
		m := obs.NewMetrics()
		start := time.Now()
		th := obs.NewThrottle(200*time.Millisecond, func() int64 { return time.Now().UnixNano() })
		ropts.Metrics = m
		ropts.Progress = func() {
			if th.Ready() {
				s := m.Snapshot()
				fmt.Fprintf(pw, "\rjobs %d/%d  %d refs (%.0f refs/s)  retries %d  failures %d ",
					s.JobsDone, s.JobsTotal, s.Refs, s.RefsPerSec(time.Since(start)),
					s.Retries, s.Failures)
			}
		}
		defer fmt.Fprintln(pw)
	}

	// Cells fully satisfied by the checkpoint flush before any job runs.
	emit()
	if rowErr != nil {
		return rowErr
	}
	if _, err := runner.Run(ctx, submit, ropts); err != nil {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		if !jobFailuresOnly(err) {
			return err
		}
		// Per-job failures were already delivered through OnError and
		// recorded in the manifest; the degraded path below reports them.
	}
	if rowErr != nil {
		return rowErr
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if o.manifest != "" {
		if err := man.Write(o.manifest); err != nil {
			return err
		}
	}
	if o.traceOut != "" {
		if err := writeTrace(o.traceOut, recorders); err != nil {
			return err
		}
	}
	if man.Failed > 0 {
		return fmt.Errorf("%w: %d of %d jobs failed; partial results written, rerun with -resume to fill the gaps",
			errDegraded, man.Failed, len(allJobs))
	}
	return nil
}

// collectFleetSpans asks every fleet member for its spans of every
// cell's trace (the trace id is the cell's content hash) and folds them
// into the store alongside the client's own spans. Collection is
// best-effort per peer: a daemon that died mid-sweep contributes
// nothing, but the spans of the peers that finished its failed-over
// cells are still there — which is exactly the story the trace should
// tell. Peers are fetched concurrently, cells sequentially per peer.
func collectFleetSpans(ctx context.Context, mem cluster.Membership, cells []spec.Cell, st *otrace.Store) {
	traces := make([]string, 0, len(cells))
	for _, c := range cells {
		h, err := c.Hash()
		if err != nil {
			continue
		}
		traces = append(traces, h)
	}
	hc := &http.Client{Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	for _, p := range mem.Peers {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			for _, tr := range traces {
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(addr, "/")+"/v1/trace/"+tr, nil)
				if err != nil {
					return
				}
				if mem.Key != "" {
					req.Header.Set(cluster.KeyHeader, mem.Key)
				}
				resp, err := hc.Do(req)
				if err != nil {
					log.Printf("trace: peer %s unreachable, its spans are skipped: %v", addr, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					resp.Body.Close() // 404: the peer never touched this cell
					continue
				}
				spans, err := otrace.ReadNDJSON(resp.Body)
				resp.Body.Close()
				if err != nil {
					log.Printf("trace: peer %s served a bad span document: %v", addr, err)
					continue
				}
				for _, s := range spans {
					st.Add(s)
				}
			}
		}(p.Addr)
	}
	wg.Wait()
}

// writeFleetTrace exports the merged fleet trace crash-safely; the
// extension picks the format (.json Chrome, .ndjson span rows).
func writeFleetTrace(path string, st *otrace.Store) error {
	spans := pruneOrphans(otrace.Dedup(st.Spans()))
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	if err := otrace.Write(f, path, spans); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// pruneOrphans drops spans whose parent chain does not resolve within
// the set: the collection races the tail of canceled hedge losers on
// the daemons, whose child spans can land in a peer's store before the
// job span that parents them. Iterates to a fixpoint so the
// descendants of a missing parent drop with it.
func pruneOrphans(spans []otrace.Span) []otrace.Span {
	for {
		ids := make(map[string]bool, len(spans))
		for _, s := range spans {
			ids[s.ID()] = true
		}
		keep := make([]otrace.Span, 0, len(spans))
		for _, s := range spans {
			if s.Parent == "" || ids[s.Parent] {
				keep = append(keep, s)
			}
		}
		if len(keep) == len(spans) {
			return keep
		}
		spans = keep
	}
}

// writeTrace exports every job's recorder (nils from never-started jobs
// elided by the writer) crash-safely; the extension picks the format.
func writeTrace(path string, recs []*flight.Recorder) error {
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	if err := flight.Write(f, path, recs...); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// jobFailuresOnly reports whether err (possibly an errors.Join tree)
// consists solely of per-job failures — the degraded-but-valid case.
func jobFailuresOnly(err error) bool {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		for _, e := range u.Unwrap() {
			if e != nil && !jobFailuresOnly(e) {
				return false
			}
		}
		return true
	}
	var je *runner.JobError
	return errors.As(err, &je)
}

// parseIndexSet parses a comma-separated list of non-negative job
// indices; an empty string means nil (no restriction).
func parseIndexSet(s string) (map[int]bool, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	set := map[int]bool{}
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad job index %q", f)
		}
		set[n] = true
	}
	return set, nil
}
