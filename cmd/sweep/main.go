// Command sweep runs a grid of (workload × machine size × scheme) cells,
// each replicated across seeds, and emits one CSV row per cell with the
// mean and 95% confidence interval of bus cycles per reference — the raw
// material for scaling plots.
//
// The grid is flattened into one job per (cell, seed) and executed on the
// shared runner pool; rows stream out as their cell's replications
// complete, in grid order, whatever the worker count.
//
// Usage:
//
//	sweep -workloads pops,thor,pero -schemes dir0b,dirnnb,dragon \
//	      -cpus 4,8,16 -refs 300000 -seeds 3 -parallel 4 > sweep.csv
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/obs"
	"dirsim/internal/runner"
	"dirsim/internal/sim"
	"dirsim/internal/study"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	workloads := flag.String("workloads", "pops,thor,pero", "comma-separated workload presets")
	schemes := flag.String("schemes", "dir1nb,wti,dir0b,dragon", "comma-separated schemes")
	cpus := flag.String("cpus", "4", "comma-separated processor counts")
	refs := flag.Int("refs", 300_000, "references per trace")
	seeds := flag.Int("seeds", 3, "replications per cell")
	parallel := flag.Int("parallel", 1, "concurrent simulation jobs (1 = sequential)")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this long (0 = no limit)")
	progress := flag.Bool("progress", false, "report job and throughput counts on stderr")
	pprofFile := flag.String("pprof", "", "write a CPU profile to this file")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *pprofFile != "" {
		f, err := os.Create(*pprofFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(ctx, os.Stdout, options{
		workloads: *workloads, schemes: *schemes, cpus: *cpus,
		refs: *refs, seeds: *seeds, parallel: *parallel,
		progress: *progress, progressW: os.Stderr,
	}); err != nil {
		log.Fatal(err)
	}
}

// options collects the command's flags.
type options struct {
	workloads, schemes, cpus string
	refs, seeds, parallel    int
	progress                 bool
	progressW                io.Writer
}

// cell is one output row in the making: a (workload, cpus) grid point
// accumulating its per-seed metric values, one series per scheme.
type cell struct {
	workload string
	cpus     int
	values   [][]float64
}

func run(ctx context.Context, w io.Writer, o options) error {
	if o.refs <= 0 || o.seeds <= 0 {
		return fmt.Errorf("refs and seeds must be positive")
	}
	var cpuList []int
	for _, c := range strings.Split(o.cpus, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil || n < 1 {
			return fmt.Errorf("bad cpu count %q", c)
		}
		cpuList = append(cpuList, n)
	}
	schemeList := strings.Split(o.schemes, ",")
	seedList := study.Seeds(1, o.seeds)
	pip := bus.Pipelined()
	metric := study.CyclesPerRef(pip)

	// Flatten the grid: jobs are ordered (workload, cpus, seed), so job
	// index i belongs to cell i/seeds and seed i%seeds.
	var jobs []runner.Job
	var cells []*cell
	for _, wlName := range strings.Split(o.workloads, ",") {
		base, err := preset(strings.TrimSpace(wlName), o.refs)
		if err != nil {
			return err
		}
		for _, n := range cpuList {
			cfg := base
			cfg.CPUs = n
			cells = append(cells, &cell{workload: base.Name, cpus: n,
				values: make([][]float64, len(schemeList))})
			for _, seed := range seedList {
				jcfg := cfg
				jcfg.Seed = seed
				jobs = append(jobs, runner.Job{
					Label:   fmt.Sprintf("%s cpus %d seed %d", base.Name, n, seed),
					Source:  func() (trace.Reader, error) { return tracegen.New(jcfg) },
					Schemes: schemeList,
					Config:  coherence.Config{Caches: n},
				})
			}
		}
	}

	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workload", "cpus", "scheme", "refs", "seeds",
		"cycles_per_ref_mean", "cycles_per_ref_ci95",
	}); err != nil {
		return err
	}
	// Rows stream: OnResult arrives in job order, so a cell's seeds finish
	// contiguously and its rows go out (and flush) the moment the last one
	// lands — long grids produce output as they go.
	var rowErr error
	ropts := runner.Options{
		Workers: o.parallel,
		OnResult: func(index int, rs []sim.Result) {
			if rowErr != nil {
				return
			}
			c := cells[index/o.seeds]
			for i, r := range rs {
				c.values[i] = append(c.values[i], metric(r))
			}
			if len(c.values[0]) < o.seeds {
				return
			}
			for i := range rs {
				s := study.Summarise(rs[i].Scheme, c.values[i])
				if err := cw.Write([]string{
					c.workload, strconv.Itoa(c.cpus), s.Scheme,
					strconv.Itoa(o.refs), strconv.Itoa(o.seeds),
					fmt.Sprintf("%.6f", s.Mean),
					fmt.Sprintf("%.6f", s.CI95),
				}); err != nil {
					rowErr = err
					return
				}
			}
			cw.Flush()
			rowErr = cw.Error()
		},
	}
	if o.progress {
		pw := o.progressW
		if pw == nil {
			pw = os.Stderr
		}
		m := obs.NewMetrics()
		start := time.Now()
		th := obs.NewThrottle(200*time.Millisecond, func() int64 { return time.Now().UnixNano() })
		ropts.Metrics = m
		ropts.Progress = func() {
			if th.Ready() {
				s := m.Snapshot()
				fmt.Fprintf(pw, "\rjobs %d/%d  %d refs (%.0f refs/s) ",
					s.JobsDone, s.JobsTotal, s.Refs, s.RefsPerSec(time.Since(start)))
			}
		}
		defer fmt.Fprintln(pw)
	}
	if _, err := runner.Run(ctx, jobs, ropts); err != nil {
		return err
	}
	if rowErr != nil {
		return rowErr
	}
	cw.Flush()
	return cw.Error()
}

func preset(name string, refs int) (tracegen.Config, error) {
	switch strings.ToLower(name) {
	case "pops":
		return tracegen.POPS(refs), nil
	case "thor":
		return tracegen.THOR(refs), nil
	case "pero":
		return tracegen.PERO(refs), nil
	default:
		return tracegen.Config{}, fmt.Errorf("unknown workload %q", name)
	}
}
