package main

import (
	"context"
	"strings"
	"testing"
)

func TestSweepGrid(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, options{
		workloads: "pero", schemes: "dir0b,dragon", cpus: "4,8", refs: 10_000, seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header + 2 cpus × 2 schemes.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if lines[0] != "workload,cpus,scheme,refs,seeds,cycles_per_ref_mean,cycles_per_ref_ci95" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "PERO,4,Dir0B,10000,2,") {
		t.Errorf("row = %q", lines[1])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 6 {
			t.Errorf("ragged row %q", l)
		}
	}
}

// Row order and content must not depend on the worker count, and the
// -progress stream must carry job counts without touching stdout.
func TestSweepParallelMatchesSequentialAndProgress(t *testing.T) {
	var seq strings.Builder
	if err := run(context.Background(), &seq, options{
		workloads: "pero,pops", schemes: "dir0b,dragon", cpus: "2,4", refs: 8_000, seeds: 2,
	}); err != nil {
		t.Fatal(err)
	}
	var par, prog strings.Builder
	if err := run(context.Background(), &par, options{
		workloads: "pero,pops", schemes: "dir0b,dragon", cpus: "2,4", refs: 8_000, seeds: 2,
		parallel: 4, progress: true, progressW: &prog,
	}); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("parallel CSV differs from sequential:\n%s\nvs\n%s", par.String(), seq.String())
	}
	if !strings.Contains(prog.String(), "jobs") {
		t.Errorf("progress output missing: %q", prog.String())
	}
	if strings.Contains(par.String(), "jobs ") {
		t.Error("progress leaked into the CSV stream")
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "4", refs: 50_000, seeds: 2})
	if err == nil {
		t.Fatal("cancelled sweep succeeded")
	}
}

func TestSweepErrors(t *testing.T) {
	var out strings.Builder
	ctx := context.Background()
	if err := run(ctx, &out, options{workloads: "bogus", schemes: "dir0b", cpus: "4", refs: 100, seeds: 1}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "bogus", cpus: "4", refs: 100, seeds: 1}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "x", refs: 100, seeds: 1}); err == nil {
		t.Error("bad cpu list accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "4", refs: 0, seeds: 1}); err == nil {
		t.Error("zero refs accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "4", refs: 100, seeds: 0}); err == nil {
		t.Error("zero seeds accepted")
	}
}
