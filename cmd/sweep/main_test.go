package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dirsim/internal/runner"
)

func TestSweepGrid(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, options{
		workloads: "pero", schemes: "dir0b,dragon", cpus: "4,8", refs: 10_000, seeds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header + 2 cpus × 2 schemes.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if lines[0] != "workload,cpus,scheme,refs,seeds,cycles_per_ref_mean,cycles_per_ref_ci95" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "PERO,4,Dir0B,10000,2,") {
		t.Errorf("row = %q", lines[1])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 6 {
			t.Errorf("ragged row %q", l)
		}
	}
}

// Row order and content must not depend on the worker count, and the
// -progress stream must carry job counts without touching stdout.
func TestSweepParallelMatchesSequentialAndProgress(t *testing.T) {
	var seq strings.Builder
	if err := run(context.Background(), &seq, options{
		workloads: "pero,pops", schemes: "dir0b,dragon", cpus: "2,4", refs: 8_000, seeds: 2,
	}); err != nil {
		t.Fatal(err)
	}
	var par, prog strings.Builder
	if err := run(context.Background(), &par, options{
		workloads: "pero,pops", schemes: "dir0b,dragon", cpus: "2,4", refs: 8_000, seeds: 2,
		parallel: 4, progress: true, progressW: &prog,
	}); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Errorf("parallel CSV differs from sequential:\n%s\nvs\n%s", par.String(), seq.String())
	}
	if !strings.Contains(prog.String(), "jobs") {
		t.Errorf("progress output missing: %q", prog.String())
	}
	if strings.Contains(par.String(), "jobs ") {
		t.Error("progress leaked into the CSV stream")
	}
}

func TestSweepCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "4", refs: 50_000, seeds: 2})
	if err == nil {
		t.Fatal("cancelled sweep succeeded")
	}
}

func TestSweepErrors(t *testing.T) {
	var out strings.Builder
	ctx := context.Background()
	if err := run(ctx, &out, options{workloads: "bogus", schemes: "dir0b", cpus: "4", refs: 100, seeds: 1}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "bogus", cpus: "4", refs: 100, seeds: 1}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "x", refs: 100, seeds: 1}); err == nil {
		t.Error("bad cpu list accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "4", refs: 0, seeds: 1}); err == nil {
		t.Error("zero refs accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "4", refs: 100, seeds: 0}); err == nil {
		t.Error("zero seeds accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "4", refs: 100, seeds: 1, resume: true}); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
	if err := run(ctx, &out, options{workloads: "pero", schemes: "dir0b", cpus: "4", refs: 100, seeds: 1, faultJobs: "x"}); err == nil {
		t.Error("bad -fault-jobs accepted")
	}
}

// The acceptance scenario end to end: a sweep with an injected panic, a
// truncated trace and transient faults on every job still finishes,
// streams the surviving cells, records the two failures in the manifest
// and checkpoint — and a clean -resume run replays only the failed cells,
// producing output byte-identical to a run that never saw a fault.
func TestFaultySweepManifestAndResume(t *testing.T) {
	// Grid: 1 workload × 3 cpu counts × 2 seeds = 6 jobs in 3 cells.
	// Cell 0 = jobs 0,1 (2 cpus), cell 1 = jobs 2,3 (4 cpus), cell 2 =
	// jobs 4,5 (8 cpus).
	base := options{
		workloads: "pops", schemes: "dir0b,dragon", cpus: "2,4,8",
		refs: 6_000, seeds: 2, parallel: 2,
	}
	ctx := context.Background()

	var clean strings.Builder
	if err := run(ctx, &clean, base); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ckPath := filepath.Join(dir, "sweep.ck.json")
	manPath := filepath.Join(dir, "failures.json")
	faulty := base
	faulty.checkpoint = ckPath
	faulty.manifest = manPath
	faulty.faultPanic = "1"     // job 1 panics mid-trace → cell 0 fails
	faulty.faultTruncate = 3000 // job 2's trace truncates → cell 1 fails
	faulty.faultJobs = "2"
	faulty.faultTransient = 1 // every job's first attempt fails transiently
	faulty.retries = 2        // ...and is absorbed by the retry budget

	var partial strings.Builder
	err := run(ctx, &partial, faulty)
	if !errors.Is(err, errDegraded) {
		t.Fatalf("want errDegraded, got %v", err)
	}
	// Only the unfaulted cell's rows survive.
	cleanLines := strings.Split(strings.TrimSpace(clean.String()), "\n")
	partialLines := strings.Split(strings.TrimSpace(partial.String()), "\n")
	if len(cleanLines) != 7 { // header + 3 cells × 2 schemes
		t.Fatalf("clean run has %d lines:\n%s", len(cleanLines), clean.String())
	}
	if len(partialLines) != 3 { // header + 1 cell × 2 schemes
		t.Fatalf("partial run has %d lines:\n%s", len(partialLines), partial.String())
	}
	for i, l := range partialLines[1:] {
		if l != cleanLines[5+i] {
			t.Errorf("surviving row %q differs from clean row %q", l, cleanLines[5+i])
		}
	}

	data, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	var man runner.Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if man.Command != "sweep" || man.Total != 6 || man.Failed != 2 || man.Succeeded != 4 {
		t.Errorf("manifest counts = %+v, want 2 of 6 failed", man)
	}
	labels := map[int]string{}
	for _, f := range man.Failures {
		labels[f.Index] = f.Label
		if f.Attempts < 2 {
			t.Errorf("failure %d reports %d attempts; transient fault should have forced a retry", f.Index, f.Attempts)
		}
	}
	if !strings.Contains(labels[1], "cpus 2") || !strings.Contains(labels[2], "cpus 4") {
		t.Errorf("failure labels = %v, want jobs 1 (cpus 2) and 2 (cpus 4)", labels)
	}

	// Resume without faults: only the 2 failed jobs rerun, and the final
	// CSV is byte-identical to the clean run.
	resumed := base
	resumed.checkpoint = ckPath
	resumed.resume = true
	var full strings.Builder
	if err := run(ctx, &full, resumed); err != nil {
		t.Fatal(err)
	}
	if full.String() != clean.String() {
		t.Errorf("resumed output differs from clean run:\n%s\nvs\n%s", full.String(), clean.String())
	}
}

// A checkpoint from one grid must not silently seed a different grid.
func TestResumeRejectsMismatchedGrid(t *testing.T) {
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "ck.json")
	o := options{
		workloads: "pero", schemes: "dir0b", cpus: "2",
		refs: 2_000, seeds: 1, checkpoint: ckPath,
	}
	var out strings.Builder
	if err := run(context.Background(), &out, o); err != nil {
		t.Fatal(err)
	}
	o.refs = 4_000
	o.resume = true
	err := run(context.Background(), &out, o)
	if err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("mismatched grid accepted: %v", err)
	}
}
