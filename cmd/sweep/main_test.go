package main

import (
	"strings"
	"testing"
)

func TestSweepGrid(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "pero", "dir0b,dragon", "4,8", 10_000, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	// Header + 2 cpus × 2 schemes.
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out.String())
	}
	if lines[0] != "workload,cpus,scheme,refs,seeds,cycles_per_ref_mean,cycles_per_ref_ci95" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "PERO,4,Dir0B,10000,2,") {
		t.Errorf("row = %q", lines[1])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 6 {
			t.Errorf("ragged row %q", l)
		}
	}
}

func TestSweepErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "bogus", "dir0b", "4", 100, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(&out, "pero", "bogus", "4", 100, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run(&out, "pero", "dir0b", "x", 100, 1); err == nil {
		t.Error("bad cpu list accepted")
	}
	if err := run(&out, "pero", "dir0b", "4", 0, 1); err == nil {
		t.Error("zero refs accepted")
	}
	if err := run(&out, "pero", "dir0b", "4", 100, 0); err == nil {
		t.Error("zero seeds accepted")
	}
}
