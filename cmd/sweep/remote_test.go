package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"dirsim/internal/server"
)

// startDaemon brings up a real dirsimd service behind httptest and
// returns its base URL.
func startDaemon(t *testing.T) string {
	t.Helper()
	s, err := server.New(server.Config{Workers: 4, Executors: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Drain(context.Background()); err != nil {
			t.Errorf("drain: %v", err)
		}
		cancel()
	})
	return ts.URL
}

// A remote run must emit a CSV byte-identical to the local run of the
// same grid: same canonical scheme names, same row order, same float
// formatting — the remote stats price through the identical cost model.
func TestSweepRemoteMatchesLocal(t *testing.T) {
	o := options{
		workloads: "pero,pops", schemes: "dir0b,berkeley", cpus: "2,4",
		refs: 8_000, seeds: 2,
	}
	var local strings.Builder
	if err := run(context.Background(), &local, o); err != nil {
		t.Fatal(err)
	}
	o.remote = startDaemon(t)
	var remote strings.Builder
	if err := run(context.Background(), &remote, o); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("remote CSV differs from local:\n--- local\n%s--- remote\n%s", local.String(), remote.String())
	}
}

// Fault-injection and checkpoint flags configure local execution and must
// refuse to combine with -remote rather than being silently ignored.
func TestSweepRemoteRejectsLocalOnlyFlags(t *testing.T) {
	base := options{workloads: "pero", schemes: "dir0b", cpus: "2", refs: 1_000, seeds: 1,
		remote: "http://127.0.0.1:1"}
	cases := []func(*options){
		func(o *options) { o.faultCorrupt = 0.1 },
		func(o *options) { o.faultTruncate = 10 },
		func(o *options) { o.faultTransient = 1 },
		func(o *options) { o.faultPanic = "0" },
		func(o *options) { o.faultJobs = "0" },
		func(o *options) { o.checkpoint = "ck.json" },
		func(o *options) { o.resume = true },
	}
	for i, mutate := range cases {
		o := base
		mutate(&o)
		var out strings.Builder
		err := run(context.Background(), &out, o)
		if err == nil || !strings.Contains(err.Error(), "-remote") {
			t.Errorf("case %d: err = %v, want -remote combination error", i, err)
		}
	}
}

// A dead daemon is a whole-command failure, not a silent empty CSV.
func TestSweepRemoteDaemonUnreachable(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, options{
		workloads: "pero", schemes: "dir0b", cpus: "2", refs: 1_000, seeds: 1,
		remote: "http://127.0.0.1:1",
	})
	if err == nil {
		t.Fatal("unreachable daemon succeeded")
	}
	if strings.Count(out.String(), "\n") > 1 {
		t.Errorf("failed remote run emitted rows:\n%s", out.String())
	}
}
