// Command dirsim runs cache-coherence schemes over a multiprocessor
// address trace — from a file or generated on the fly — and reports bus
// cycles per reference, event frequencies, and the invalidation fan-out.
//
// Usage:
//
//	dirsim -workload pops -refs 500000 -schemes dir1nb,dir0b,dragon
//	dirsim -trace pops.trc -schemes dir0b,dirnnb -events
//	dirsim -workload thor -drop-locks -schemes dir1nb
//	dirsim -workload pops -finite 64x4 -schemes dir0b
//	dirsim -workload pops -refs 5000000 -parallel 4 -progress -timeout 60s
//	dirsim -workload pops -schemes dir1b -trace-out run.json -spans
package main

import (
	"compress/gzip"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"dirsim/internal/atomicio"
	"dirsim/internal/bus"
	"dirsim/internal/coherence"
	"dirsim/internal/flight"
	"dirsim/internal/numa"
	"dirsim/internal/obs"
	"dirsim/internal/report"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirsim: ")
	traceFile := flag.String("trace", "", "binary trace file to simulate (overrides -workload)")
	workload := flag.String("workload", "pops", "workload preset when no -trace given: pops, thor or pero")
	refs := flag.Int("refs", 500_000, "references to generate for -workload")
	schemes := flag.String("schemes", "dir1nb,wti,dir0b,dragon", "comma-separated schemes to simulate")
	cpus := flag.Int("cpus", 4, "number of caches")
	finite := flag.String("finite", "", "finite cache geometry SETSxWAYS (e.g. 64x4); empty = infinite")
	dropLocks := flag.Bool("drop-locks", false, "exclude spin-lock test reads (Section 5.2)")
	byProcess := flag.Bool("by-process", false, "attribute references to per-process caches")
	events := flag.Bool("events", false, "print the Table 4 event-frequency table")
	fanout := flag.Bool("fanout", false, "print the Figure 1 invalidation fan-out histogram")
	q := flag.Float64("q", 0, "fixed bus cycles added per transaction (Section 5.1)")
	csvOut := flag.Bool("csv", false, "emit machine-readable CSV instead of tables")
	md := flag.Bool("md", false, "render tables as Markdown")
	latency := flag.Bool("latency", false, "also print average memory access time (Section 5.1's metric)")
	numaNodes := flag.Int("numa", 0, "also simulate a distributed full-map directory with N nodes (message-level)")
	numaHome := flag.String("home", "interleaved", "NUMA home policy: interleaved or firsttouch")
	parallel := flag.Int("parallel", 1, "engine worker goroutines (1 = sequential; results are identical)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long (0 = no limit)")
	progress := flag.Bool("progress", false, "report throughput on stderr while simulating")
	pprofFile := flag.String("pprof", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceOut := flag.String("trace-out", "", "write a flight trace here (.json = Chrome trace for Perfetto, .ndjson = one event per line)")
	traceSample := flag.Int("trace-sample", flight.DefaultSample, "with -trace-out, record every Nth reference's protocol events (0 = spans only)")
	spans := flag.Bool("spans", false, "with -trace-out, also record decode/simulate/fan-out/report phase spans")
	flag.Parse()

	// A signal cancels the run between batches; the explicit stopProfiles
	// calls below (not defers — log.Fatal skips defers) then flush the
	// partial profiles before exit.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	stopProfiles, err := startProfiles(*pprofFile, *memProfile)
	if err != nil {
		log.Fatal(err)
	}
	var rec *flight.Recorder
	if *traceOut != "" {
		rec = flight.New(flight.Options{Sample: *traceSample, Spans: *spans, Label: "dirsim"})
	}
	// flush lands every run-scoped artifact — the trace written so far
	// and the profiles — exactly once, so an interrupted run still
	// leaves analyzable output. Explicit on every exit path, never a
	// defer: log.Fatal skips defers.
	var flushOnce sync.Once
	var flushErr error
	flush := func() error {
		flushOnce.Do(func() {
			if rec != nil {
				if err := writeTrace(*traceOut, rec); err != nil {
					flushErr = err
				}
			}
			if err := stopProfiles(); err != nil && flushErr == nil {
				flushErr = err
			}
		})
		return flushErr
	}
	fatal := func(err error) {
		flush() //nolint:errcheck // already failing; the run error wins
		log.Fatal(err)
	}
	if err := run(ctx, os.Stdout, options{
		traceFile: *traceFile, workload: *workload, refs: *refs,
		schemes: *schemes, cpus: *cpus, finite: *finite,
		dropLocks: *dropLocks, byProcess: *byProcess,
		events: *events, fanout: *fanout, csvOut: *csvOut, markdown: *md,
		latency: *latency, q: *q,
		numaNodes: *numaNodes, numaHome: *numaHome,
		parallel: *parallel, progress: *progress, progressW: os.Stderr,
		recorder: rec,
	}); err != nil {
		fatal(err)
	}
	if err := flush(); err != nil {
		log.Fatal(err)
	}
}

// startProfiles starts the optional CPU profile and arranges the optional
// heap profile. The returned stop flushes both through atomicio and is
// idempotent, so every exit path can call it explicitly; nothing here is
// deferred because log.Fatal does not run defers.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *atomicio.File
	if cpuPath != "" {
		cpuFile, err = atomicio.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Abort()
			return nil, err
		}
	}
	var once sync.Once
	var stopErr error
	stop = func() error {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Commit(); err != nil {
					stopErr = err
				}
			}
			if memPath == "" {
				return
			}
			mf, err := atomicio.Create(memPath)
			if err != nil {
				if stopErr == nil {
					stopErr = err
				}
				return
			}
			runtime.GC() // settle allocation stats before snapshotting the heap
			if err := pprof.WriteHeapProfile(mf); err != nil {
				mf.Abort()
				if stopErr == nil {
					stopErr = err
				}
				return
			}
			if err := mf.Commit(); err != nil && stopErr == nil {
				stopErr = err
			}
		})
		return stopErr
	}
	return stop, nil
}

// writeTrace exports the recorder crash-safely; the extension picks the
// format (see flight.FormatForPath).
func writeTrace(path string, rec *flight.Recorder) error {
	f, err := atomicio.Create(path)
	if err != nil {
		return err
	}
	if err := flight.Write(f, path, rec); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

// options collects the command's flags.
type options struct {
	traceFile, workload    string
	refs, cpus             int
	schemes, finite        string
	dropLocks, byProcess   bool
	events, fanout, csvOut bool
	markdown               bool
	latency                bool
	q                      float64
	numaNodes              int
	numaHome               string
	parallel               int
	progress               bool
	progressW              io.Writer
	recorder               *flight.Recorder
}

func run(ctx context.Context, w io.Writer, o options) error {
	rd, err := openTrace(o.traceFile, o.workload, o.refs)
	if err != nil {
		return err
	}
	if o.dropLocks {
		rd = trace.DropLockSpins(rd)
	}
	cfg := coherence.Config{Caches: o.cpus}
	if o.finite != "" {
		if _, err := fmt.Sscanf(o.finite, "%dx%d", &cfg.FiniteSets, &cfg.FiniteWays); err != nil {
			return fmt.Errorf("bad -finite %q (want SETSxWAYS): %v", o.finite, err)
		}
	}
	opts := sim.Options{Parallel: o.parallel, Recorder: o.recorder}
	if o.byProcess {
		opts.CacheBy = sim.ByProcess
	}
	if o.progress {
		pw := o.progressW
		if pw == nil {
			pw = os.Stderr
		}
		m := obs.NewMetrics()
		start := time.Now()
		th := obs.NewThrottle(200*time.Millisecond, func() int64 { return time.Now().UnixNano() })
		opts.OnProgress = func(n int) {
			m.AddRefs(uint64(n))
			if th.Ready() {
				s := m.Snapshot()
				fmt.Fprintf(pw, "\r%d refs (%.0f refs/s) ", s.Refs, s.RefsPerSec(time.Since(start)))
			}
		}
		defer fmt.Fprintln(pw)
	}
	names := strings.Split(o.schemes, ",")
	results, err := sim.RunSchemes(ctx, rd, names, cfg, opts)
	if err != nil {
		return err
	}

	pip, np := bus.Pipelined(), bus.NonPipelined()
	if o.csvOut {
		return report.WriteCSV(w, results, pip, np)
	}
	tb := report.NewTable("bus cycles per memory reference",
		"Scheme", "pipelined", "non-pipelined", "cycles/txn", "txns/1k refs")
	for _, r := range results {
		tb.AddRow(r.Scheme,
			fmt.Sprintf("%.4f", r.CyclesPerRefWithOverhead(pip, o.q)),
			fmt.Sprintf("%.4f", r.CyclesPerRefWithOverhead(np, o.q)),
			fmt.Sprintf("%.2f", r.CyclesPerTransaction(pip)),
			fmt.Sprintf("%.1f", float64(r.Stats.Transactions)/float64(r.Stats.Refs)*1000))
	}
	render := func(t *report.Table) string {
		if o.markdown {
			return t.RenderMarkdown()
		}
		return t.Render()
	}
	fmt.Fprint(w, render(tb))
	if o.latency {
		lm := pip.Latency(1, 1)
		lt := report.NewTable("average memory access time (processor cycles per reference; hit=1, overhead=1)",
			"Scheme", "cycles")
		for _, r := range results {
			lt.AddRow(r.Scheme, fmt.Sprintf("%.4f", r.AvgAccessTime(lm)))
		}
		fmt.Fprintln(w)
		fmt.Fprint(w, render(lt))
	}
	if o.events {
		fmt.Fprintln(w)
		fmt.Fprint(w, report.Table4(results))
	}
	if o.fanout {
		for _, r := range results {
			if r.Stats.InvalFanout.Total() > 0 {
				fmt.Fprintln(w)
				fmt.Fprint(w, report.Figure1(r))
			}
		}
	}
	if o.numaNodes > 0 {
		ncfg := numa.Config{Nodes: o.numaNodes}
		switch strings.ToLower(o.numaHome) {
		case "interleaved":
			ncfg.Policy = numa.Interleaved
		case "firsttouch", "first-touch":
			ncfg.Policy = numa.FirstTouch
		default:
			return fmt.Errorf("unknown -home %q (want interleaved or firsttouch)", o.numaHome)
		}
		eng, err := numa.New(ncfg)
		if err != nil {
			return err
		}
		rd2, err := openTrace(o.traceFile, o.workload, o.refs)
		if err != nil {
			return err
		}
		if o.dropLocks {
			rd2 = trace.DropLockSpins(rd2)
		}
		st, err := numa.Run(ctx, rd2, eng, numa.Options{})
		if err != nil {
			return err
		}
		nt := report.NewTable(fmt.Sprintf("distributed full-map directory, %d nodes, %s homes", o.numaNodes, ncfg.Policy),
			"metric", "value")
		nt.AddRow("messages/ref", fmt.Sprintf("%.4f", st.MessagesPerRef()))
		nt.AddRow("critical hops/ref", fmt.Sprintf("%.4f", st.CriticalHopsPerRef()))
		nt.AddRow("local-home fraction", fmt.Sprintf("%.2f", st.LocalHomeFraction()))
		nt.AddRow("3-hop misses", fmt.Sprintf("%d", st.ThreeHopMisses))
		nt.AddRow("invalidations", fmt.Sprintf("%d", st.Invalidations))
		fmt.Fprintln(w)
		fmt.Fprint(w, render(nt))
	}
	if o.recorder != nil && len(results) > 0 {
		// The report phase follows the simulated stream: a span starting
		// at the last reference ordinal, one tick per reported scheme.
		// Track 0 is the sim driver's.
		refs := results[0].Stats.Refs
		o.recorder.Span(0, "report", refs, refs+uint64(len(results)))
	}
	return nil
}

func openTrace(traceFile, workload string, refs int) (trace.Reader, error) {
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return nil, err
		}
		// The file stays open for the life of the process; the OS
		// reclaims it on exit.
		if strings.HasSuffix(traceFile, ".gz") {
			zr, err := gzip.NewReader(f)
			if err != nil {
				return nil, fmt.Errorf("open %s: %w", traceFile, err)
			}
			return trace.NewBinaryReader(zr), nil
		}
		return trace.NewBinaryReader(f), nil
	}
	switch strings.ToLower(workload) {
	case "pops":
		return tracegen.New(tracegen.POPS(refs))
	case "thor":
		return tracegen.New(tracegen.THOR(refs))
	case "pero":
		return tracegen.New(tracegen.PERO(refs))
	default:
		return nil, fmt.Errorf("unknown workload %q (want pops, thor or pero)", workload)
	}
}
