package main

import (
	"compress/gzip"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dirsim/internal/trace"
)

func TestRunGeneratedWorkload(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, options{workload: "pero", refs: 20000, schemes: "dir0b,dragon", cpus: 4, events: true, fanout: true})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"bus cycles per memory reference", "Dir0B", "Dragon", "Table 4", "Figure 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCSVMode(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, options{workload: "pero", refs: 10000, schemes: "dir0b", cpus: 4, csvOut: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "scheme,refs,transactions") {
		t.Errorf("CSV header missing: %q", out.String()[:60])
	}
}

func TestRunTraceFileAndGzip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "t.trc")
	zipped := filepath.Join(dir, "t.trc.gz")

	refs := trace.Slice{
		{CPU: 0, Kind: trace.Read, Addr: 0x10},
		{CPU: 1, Kind: trace.Read, Addr: 0x10},
		{CPU: 0, Kind: trace.Write, Addr: 0x10},
	}
	f, err := os.Create(plain)
	if err != nil {
		t.Fatal(err)
	}
	bw := trace.NewBinaryWriter(f)
	for _, r := range refs {
		if err := bw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	zf, err := os.Create(zipped)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(zf)
	bw = trace.NewBinaryWriter(zw)
	for _, r := range refs {
		if err := bw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := zf.Close(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{plain, zipped} {
		var out strings.Builder
		if err := run(context.Background(), &out, options{traceFile: path, schemes: "dir0b", cpus: 4}); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !strings.Contains(out.String(), "Dir0B") {
			t.Errorf("%s: missing results", path)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), &out, options{workload: "nope", refs: 100, schemes: "dir0b", cpus: 4}); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(context.Background(), &out, options{workload: "pero", refs: 100, schemes: "bogus", cpus: 4}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if err := run(context.Background(), &out, options{workload: "pero", refs: 100, schemes: "dir0b", cpus: 4, finite: "badgeom"}); err == nil {
		t.Error("bad -finite accepted")
	}
	if err := run(context.Background(), &out, options{traceFile: "/does/not/exist.trc", schemes: "dir0b", cpus: 4}); err == nil {
		t.Error("missing trace file accepted")
	}
}

func TestRunFiniteAndFilters(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, options{workload: "pops", refs: 20000, schemes: "dir0b", cpus: 4, finite: "16x2", dropLocks: true, byProcess: true, q: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Dir0B") {
		t.Error("missing results")
	}
}

// TestRunProgressAndParallel exercises the -progress and -parallel paths:
// the progress writer must see at least one throughput line, stdout stays
// clean of it, and the parallel run reports the same table as sequential.
func TestRunProgressAndParallel(t *testing.T) {
	var out, prog strings.Builder
	err := run(context.Background(), &out, options{
		workload: "pero", refs: 20000, schemes: "dir0b,dragon", cpus: 4,
		parallel: 4, progress: true, progressW: &prog,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.String(), "refs") {
		t.Errorf("progress output missing: %q", prog.String())
	}
	if strings.Contains(out.String(), "refs/s") {
		t.Error("progress leaked into stdout")
	}
	var seq strings.Builder
	if err := run(context.Background(), &seq, options{
		workload: "pero", refs: 20000, schemes: "dir0b,dragon", cpus: 4,
	}); err != nil {
		t.Fatal(err)
	}
	if out.String() != seq.String() {
		t.Error("parallel table differs from sequential")
	}
}

// A context that is already cancelled must abort the run with its error.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, &out, options{workload: "pero", refs: 100_000, schemes: "dir0b", cpus: 4})
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("err = %v, want context cancellation", err)
	}
}

func TestRunNUMAAndLatency(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), &out, options{workload: "pero", refs: 20000, schemes: "dirnnb",
		cpus: 4, latency: true, numaNodes: 4, numaHome: "firsttouch"})
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"average memory access time", "distributed full-map directory", "critical hops/ref", "first-touch"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if err := run(context.Background(), &out, options{workload: "pero", refs: 100, schemes: "dir0b",
		cpus: 4, numaNodes: 4, numaHome: "bogus"}); err == nil {
		t.Error("bad -home accepted")
	}
}
