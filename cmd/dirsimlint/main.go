// Command dirsimlint runs the dirsim-specific static analysis suite
// (internal/lint) over the module, and — with -mc — the explicit-state
// protocol model checker (internal/mc) over the coherence engines.
//
// Usage:
//
//	dirsimlint ./...                 lint the whole module
//	dirsimlint -list                 show the rules
//	dirsimlint -rules floateq ./...  run a subset of rules
//	dirsimlint -format=sarif ./...   SARIF 2.1.0 for code scanning
//	dirsimlint -baseline lint.json   filter out accepted findings
//	dirsimlint -write-baseline lint.json ./...   accept current findings
//	dirsimlint -mc                   explore every engine's state graph
//	dirsimlint -mc -schemes dir1nb,moesi -blocks 2
//
// Findings can be suppressed at the source line with
//
//	//lint:ignore <rule> <reason>
//
// on the offending line or the line above it; a pragma that suppresses
// nothing is itself reported, so stale ignores cannot accumulate.
//
// Exit codes: 0 when clean, 1 when findings or invariant violations are
// reported, 2 when the module cannot be loaded (or the flags are
// unusable). CI distinguishes "code has findings" from "the linter
// itself broke".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dirsim/internal/atomicio"
	"dirsim/internal/coherence"
	"dirsim/internal/lint"
	"dirsim/internal/mc"
)

// Exit codes.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	mcMode := flag.Bool("mc", false, "model-check engine state graphs instead of linting")
	schemes := flag.String("schemes", "", "comma-separated schemes for -mc (default: every engine)")
	caches := flag.Int("caches", 2, "caches in the -mc universe")
	blocks := flag.Int("blocks", 1, "distinct blocks in the -mc universe")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	list := flag.Bool("list", false, "list the lint rules and exit")
	dir := flag.String("C", ".", "directory inside the module to lint")
	format := flag.String("format", "text", "output format: text, json or sarif")
	baseline := flag.String("baseline", "", "baseline file of accepted findings to filter out")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit clean")
	flag.Parse()

	os.Exit(run(os.Stdout, os.Stderr, options{
		mcMode: *mcMode, schemes: *schemes, caches: *caches, blocks: *blocks,
		rules: *rules, list: *list, dir: *dir, patterns: flag.Args(),
		format: *format, baseline: *baseline, writeBaseline: *writeBaseline,
	}))
}

// options collects the command's flags.
type options struct {
	mcMode         bool
	schemes        string
	caches, blocks int
	rules          string
	list           bool
	dir            string
	patterns       []string
	format         string
	baseline       string
	writeBaseline  string
}

// run executes one invocation and returns the process exit code.
func run(w, errw io.Writer, opts options) int {
	code, err := runE(w, opts)
	if err != nil {
		fmt.Fprintf(errw, "dirsimlint: %v\n", err)
	}
	return code
}

// runE dispatches one invocation; every error it returns is an
// operational failure (exit 2), never a finding.
func runE(w io.Writer, opts options) (int, error) {
	if opts.list {
		for _, r := range lint.DefaultRules() {
			fmt.Fprintf(w, "%-12s %s\n", r.Name(), r.Doc())
		}
		return exitClean, nil
	}
	if opts.mcMode {
		return runMC(w, opts)
	}
	return runLint(w, opts)
}

// runLint loads the requested packages, applies the rules, honours
// pragmas and the baseline, and renders the survivors.
func runLint(w io.Writer, opts options) (int, error) {
	rules, err := selectRules(opts.rules)
	if err != nil {
		return exitError, err
	}
	switch opts.format {
	case "", "text", "json", "sarif":
	default:
		return exitError, fmt.Errorf("unknown format %q (want text, json or sarif)", opts.format)
	}
	bl, err := lint.ReadBaseline(opts.baseline)
	if err != nil {
		return exitError, err
	}
	pkgs, err := lint.Load(opts.dir, opts.patterns...)
	if err != nil {
		return exitError, err
	}
	relFile := relativizer(pkgs)

	findings := lint.Run(pkgs, rules)
	pragmas, malformed := lint.CollectPragmas(pkgs)
	findings = lint.Suppress(findings, pragmas)
	findings = append(findings, malformed...)
	findings = bl.Filter(findings, relFile)
	lint.SortFindings(findings)

	if opts.writeBaseline != "" {
		data, err := lint.MarshalBaseline(findings, relFile)
		if err != nil {
			return exitError, err
		}
		if err := atomicio.WriteFile(opts.writeBaseline, data); err != nil {
			return exitError, err
		}
		fmt.Fprintf(w, "wrote %d finding(s) to baseline %s\n", len(findings), opts.writeBaseline)
		return exitClean, nil
	}

	switch opts.format {
	case "json":
		if err := writeJSON(w, findings, relFile); err != nil {
			return exitError, err
		}
	case "sarif":
		data, err := lint.MarshalSARIF(findings, rules, relFile)
		if err != nil {
			return exitError, err
		}
		if _, err := w.Write(data); err != nil {
			return exitError, err
		}
	default:
		for _, f := range findings {
			fmt.Fprintln(w, f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(w, "%d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		return exitFindings, nil
	}
	return exitClean, nil
}

// relativizer maps absolute finding filenames to module-relative,
// slash-separated paths — the form baselines and SARIF artifact URIs use.
func relativizer(pkgs []*lint.Package) func(string) string {
	root := ""
	if len(pkgs) > 0 {
		root = pkgs[0].Root
	}
	return func(name string) string {
		if root != "" {
			if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
				return filepath.ToSlash(rel)
			}
		}
		return filepath.ToSlash(name)
	}
}

// jsonFinding is the -format=json shape of one finding.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// writeJSON renders findings as a JSON array (always an array, never
// null, so consumers can index unconditionally).
func writeJSON(w io.Writer, findings []lint.Finding, relFile func(string) string) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: relFile(f.Pos.Filename), Line: f.Pos.Line, Col: f.Pos.Column,
			Rule: f.Rule, Msg: f.Msg,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// selectRules resolves a comma-separated rule list against DefaultRules.
func selectRules(names string) ([]lint.Rule, error) {
	if names == "" {
		return lint.DefaultRules(), nil
	}
	byName := map[string]lint.Rule{}
	for _, r := range lint.DefaultRules() {
		byName[r.Name()] = r
	}
	var out []lint.Rule
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		r, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (try -list)", n)
		}
		out = append(out, r)
	}
	return out, nil
}

// runMC explores every requested engine's reachable state graph and
// prints one summary line per engine, plus any violations found.
func runMC(w io.Writer, opts options) (int, error) {
	names := coherence.EngineNames()
	if opts.schemes != "" {
		names = strings.Split(opts.schemes, ",")
	}
	clean := true
	for _, name := range names {
		name = strings.TrimSpace(name)
		res, err := mc.ExploreScheme(name, mc.Options{Caches: opts.caches, Blocks: opts.blocks})
		if err != nil {
			return exitError, err
		}
		fmt.Fprintf(w, "%-14s %4d states, %5d edges, %5d transitions, depth %2d",
			res.Engine, res.Nodes, res.Edges, res.Transitions, res.Depth)
		if res.Truncated {
			fmt.Fprint(w, " (truncated)")
			clean = false
		}
		if len(res.Unreachable) > 0 {
			fmt.Fprintf(w, "; unreachable: %s", strings.Join(res.Unreachable, " "))
		}
		fmt.Fprintln(w)
		for _, v := range res.Violations {
			fmt.Fprintf(w, "  VIOLATION %v\n", v)
			clean = false
		}
	}
	if !clean {
		fmt.Fprintln(w, "model checking found violations")
		return exitFindings, nil
	}
	return exitClean, nil
}
