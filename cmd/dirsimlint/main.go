// Command dirsimlint runs the dirsim-specific static analysis suite
// (internal/lint) over the module, and — with -mc — the explicit-state
// protocol model checker (internal/mc) over the coherence engines.
//
// Usage:
//
//	dirsimlint ./...                 lint the whole module
//	dirsimlint -list                 show the rules
//	dirsimlint -rules floateq ./...  run a subset of rules
//	dirsimlint -mc                   explore every engine's state graph
//	dirsimlint -mc -schemes dir1nb,moesi -blocks 2
//
// The command exits non-zero when any lint finding or invariant
// violation is reported, so it can gate CI.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"dirsim/internal/coherence"
	"dirsim/internal/lint"
	"dirsim/internal/mc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dirsimlint: ")
	mcMode := flag.Bool("mc", false, "model-check engine state graphs instead of linting")
	schemes := flag.String("schemes", "", "comma-separated schemes for -mc (default: every engine)")
	caches := flag.Int("caches", 2, "caches in the -mc universe")
	blocks := flag.Int("blocks", 1, "distinct blocks in the -mc universe")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	list := flag.Bool("list", false, "list the lint rules and exit")
	dir := flag.String("C", ".", "directory inside the module to lint")
	flag.Parse()

	clean, err := run(os.Stdout, options{
		mcMode: *mcMode, schemes: *schemes, caches: *caches, blocks: *blocks,
		rules: *rules, list: *list, dir: *dir, patterns: flag.Args(),
	})
	if err != nil {
		log.Fatal(err)
	}
	if !clean {
		os.Exit(1)
	}
}

// options collects the command's flags.
type options struct {
	mcMode         bool
	schemes        string
	caches, blocks int
	rules          string
	list           bool
	dir            string
	patterns       []string
}

// run executes one invocation and reports whether it came back clean.
func run(w io.Writer, opts options) (bool, error) {
	if opts.list {
		for _, r := range lint.DefaultRules() {
			fmt.Fprintf(w, "%-12s %s\n", r.Name(), r.Doc())
		}
		return true, nil
	}
	if opts.mcMode {
		return runMC(w, opts)
	}
	return runLint(w, opts)
}

// runLint loads the requested packages and applies the rules.
func runLint(w io.Writer, opts options) (bool, error) {
	rules, err := selectRules(opts.rules)
	if err != nil {
		return false, err
	}
	pkgs, err := lint.Load(opts.dir, opts.patterns...)
	if err != nil {
		return false, err
	}
	findings := lint.Run(pkgs, rules)
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(w, "%d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		return false, nil
	}
	return true, nil
}

// selectRules resolves a comma-separated rule list against DefaultRules.
func selectRules(names string) ([]lint.Rule, error) {
	if names == "" {
		return lint.DefaultRules(), nil
	}
	byName := map[string]lint.Rule{}
	for _, r := range lint.DefaultRules() {
		byName[r.Name()] = r
	}
	var out []lint.Rule
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		r, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (try -list)", n)
		}
		out = append(out, r)
	}
	return out, nil
}

// runMC explores every requested engine's reachable state graph and
// prints one summary line per engine, plus any violations found.
func runMC(w io.Writer, opts options) (bool, error) {
	names := coherence.EngineNames()
	if opts.schemes != "" {
		names = strings.Split(opts.schemes, ",")
	}
	clean := true
	for _, name := range names {
		name = strings.TrimSpace(name)
		res, err := mc.ExploreScheme(name, mc.Options{Caches: opts.caches, Blocks: opts.blocks})
		if err != nil {
			return false, err
		}
		fmt.Fprintf(w, "%-14s %4d states, %5d edges, %5d transitions, depth %2d",
			res.Engine, res.Nodes, res.Edges, res.Transitions, res.Depth)
		if res.Truncated {
			fmt.Fprint(w, " (truncated)")
			clean = false
		}
		if len(res.Unreachable) > 0 {
			fmt.Fprintf(w, "; unreachable: %s", strings.Join(res.Unreachable, " "))
		}
		fmt.Fprintln(w)
		for _, v := range res.Violations {
			fmt.Fprintf(w, "  VIOLATION %v\n", v)
			clean = false
		}
	}
	if !clean {
		fmt.Fprintln(w, "model checking found violations")
	}
	return clean, nil
}
