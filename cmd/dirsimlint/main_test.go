package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dirsim/internal/coherence"
	"dirsim/internal/lint"
)

// TestRepoIsLintClean is the gate the command exists for: the module's own
// shipped code must produce zero findings under every default rule, with
// no baseline.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short (the plain CI job runs it)")
	}
	var sb strings.Builder
	code := run(&sb, &sb, options{dir: ".", patterns: []string{"./..."}})
	if code != exitClean {
		t.Fatalf("exit %d; repository has lint findings:\n%s", code, sb.String())
	}
}

// TestEveryEngineHasPurityRoot asserts the enginepurity rule covers every
// registered engine: each name NewByName can construct resolves to a
// concrete type whose Access method is an analysis root.
func TestEveryEngineHasPurityRoot(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short (the plain CI job runs it)")
	}
	pkgs, err := lint.Load(".", "./...")
	if err != nil {
		t.Fatal(err)
	}
	roots := lint.EngineAccessRoots(lint.NewModule(pkgs))
	if len(roots) == 0 {
		t.Fatal("no engine Access roots found")
	}
	var covered []string
	for name := range roots {
		covered = append(covered, name)
	}
	names := coherence.EngineNames()
	if len(names) == 0 {
		t.Fatal("no registered engines")
	}
	for _, name := range names {
		eng, err := coherence.NewByName(name, coherence.Config{Caches: 2})
		if err != nil {
			t.Fatalf("NewByName(%s): %v", name, err)
		}
		typ := reflect.TypeOf(eng)
		for typ.Kind() == reflect.Pointer {
			typ = typ.Elem()
		}
		if _, ok := roots[typ.Name()]; !ok {
			t.Errorf("engine %q (concrete type %s) has no enginepurity Access root; covered: %v",
				name, typ.Name(), covered)
		}
	}
}

// TestExitCodes asserts the documented exit-code contract: 0 clean,
// 1 findings, 2 load error.
func TestExitCodes(t *testing.T) {
	t.Run("clean is 0", func(t *testing.T) {
		var sb strings.Builder
		if code := run(&sb, &sb, options{list: true}); code != exitClean {
			t.Fatalf("list: exit %d, want %d\n%s", code, exitClean, sb.String())
		}
	})
	t.Run("findings are 1", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":              "module example.com/bad\n\ngo 1.22\n",
			"internal/bad/bad.go": "package bad\n\nimport \"math/rand\"\n\n// Roll draws from the global source.\nfunc Roll() int { return rand.Int() }\n",
		})
		var sb strings.Builder
		if code := run(&sb, &sb, options{dir: dir, patterns: []string{"./..."}}); code != exitFindings {
			t.Fatalf("exit %d, want %d\n%s", code, exitFindings, sb.String())
		}
		if !strings.Contains(sb.String(), "finding(s)") {
			t.Errorf("missing findings summary:\n%s", sb.String())
		}
	})
	t.Run("load error is 2", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"go.mod":                    "module example.com/broken\n\ngo 1.22\n",
			"internal/broken/broken.go": "package broken\n\nfunc Oops() { return 1 }\n", // type error
		})
		var sb strings.Builder
		if code := run(&sb, &sb, options{dir: dir, patterns: []string{"./..."}}); code != exitError {
			t.Fatalf("exit %d, want %d\n%s", code, exitError, sb.String())
		}
	})
	t.Run("bad flag value is 2", func(t *testing.T) {
		var sb strings.Builder
		if code := run(&sb, &sb, options{dir: ".", format: "yaml"}); code != exitError {
			t.Fatalf("exit %d, want %d", code, exitError)
		}
	})
}

// TestSuppressionAndBaselineFlow exercises the pragma and baseline paths
// end to end on a throwaway module.
func TestSuppressionAndBaselineFlow(t *testing.T) {
	files := map[string]string{
		"go.mod": "module example.com/supp\n\ngo 1.22\n",
		"internal/supp/a.go": "package supp\n\nimport \"math/rand\"\n\n" +
			"// Roll is allowed to use the global source.\n" +
			"//lint:ignore nondeterm seeded upstream for this demo\n" +
			"func Roll() int { return rand.Int() }\n",
		"internal/supp/b.go": "package supp\n\nimport \"math/rand\"\n\n// Draw is not suppressed.\nfunc Draw() int { return rand.Int() }\n",
	}
	dir := writeModule(t, files)

	// The pragma suppresses a.go's finding; b.go's remains → exit 1.
	var sb strings.Builder
	if code := run(&sb, &sb, options{dir: dir, patterns: []string{"./..."}}); code != exitFindings {
		t.Fatalf("exit %d, want %d\n%s", code, exitFindings, sb.String())
	}
	if strings.Contains(sb.String(), "a.go") {
		t.Errorf("suppressed finding still reported:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "b.go") {
		t.Errorf("unsuppressed finding missing:\n%s", sb.String())
	}

	// Accept the rest into a baseline → the write itself exits 0.
	blPath := filepath.Join(t.TempDir(), "baseline.json")
	sb.Reset()
	if code := run(&sb, &sb, options{dir: dir, patterns: []string{"./..."}, writeBaseline: blPath}); code != exitClean {
		t.Fatalf("write-baseline: exit %d\n%s", code, sb.String())
	}

	// With the baseline, the module lints clean.
	sb.Reset()
	if code := run(&sb, &sb, options{dir: dir, patterns: []string{"./..."}, baseline: blPath}); code != exitClean {
		t.Fatalf("baselined run: exit %d\n%s", code, sb.String())
	}

	// An unused pragma is itself a finding.
	files["internal/supp/b.go"] = "package supp\n\n//lint:ignore floateq nothing here compares floats\nfunc Draw() int { return 4 }\n"
	dir2 := writeModule(t, files)
	sb.Reset()
	if code := run(&sb, &sb, options{dir: dir2, patterns: []string{"./..."}}); code != exitFindings {
		t.Fatalf("unused pragma: exit %d\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "unused suppression") {
		t.Errorf("unused pragma not reported:\n%s", sb.String())
	}
}

// TestJSONFormat checks -format=json emits a parseable array with
// module-relative paths.
func TestJSONFormat(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":          "module example.com/j\n\ngo 1.22\n",
		"internal/j/j.go": "package j\n\nimport \"math/rand\"\n\n// R rolls.\nfunc R() int { return rand.Int() }\n",
	})
	var sb strings.Builder
	if code := run(&sb, &sb, options{dir: dir, patterns: []string{"./..."}, format: "json"}); code != exitFindings {
		t.Fatalf("exit %d\n%s", code, sb.String())
	}
	var got []struct {
		File, Rule, Msg string
		Line, Col       int
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(got) == 0 || got[0].File != "internal/j/j.go" || got[0].Rule == "" || got[0].Line == 0 {
		t.Fatalf("unexpected findings: %+v", got)
	}
}

func TestRunList(t *testing.T) {
	var sb strings.Builder
	code := run(&sb, &sb, options{list: true})
	if code != exitClean {
		t.Fatalf("list: exit %d", code)
	}
	for _, rule := range []string{
		"maporder", "nondeterm", "floateq", "stateswitch", "ctorerr", "registry",
		"gocapture", "enginepurity", "lockcheck", "ctxflow",
	} {
		if !strings.Contains(sb.String(), rule) {
			t.Errorf("rule %s missing from -list output:\n%s", rule, sb.String())
		}
	}
}

func TestRunMC(t *testing.T) {
	var sb strings.Builder
	code := run(&sb, &sb, options{mcMode: true, schemes: "dir1nb,moesi", caches: 2, blocks: 1})
	if code != exitClean {
		t.Fatalf("model checker exit %d:\n%s", code, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "Dir1NB") || !strings.Contains(out, "MOESI") {
		t.Errorf("missing engine summaries:\n%s", out)
	}
	if !strings.Contains(out, "states") || !strings.Contains(out, "unreachable") {
		t.Errorf("summary lines incomplete:\n%s", out)
	}
}

func TestSelectRules(t *testing.T) {
	rs, err := selectRules("floateq, registry")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Name() != "floateq" || rs[1].Name() != "registry" {
		t.Fatalf("selected %v", rs)
	}
	if _, err := selectRules("nosuchrule"); err == nil {
		t.Fatal("unknown rule accepted")
	}
}

// writeModule materializes a throwaway module on disk.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}
