package main

import (
	"strings"
	"testing"
)

// TestRepoIsLintClean is the gate the command exists for: the module's own
// shipped code must produce zero findings under every default rule.
func TestRepoIsLintClean(t *testing.T) {
	var sb strings.Builder
	clean, err := run(&sb, options{dir: ".", patterns: []string{"./..."}})
	if err != nil {
		t.Fatal(err)
	}
	if !clean {
		t.Fatalf("repository has lint findings:\n%s", sb.String())
	}
}

func TestRunList(t *testing.T) {
	var sb strings.Builder
	clean, err := run(&sb, options{list: true})
	if err != nil || !clean {
		t.Fatalf("list: clean=%v err=%v", clean, err)
	}
	for _, rule := range []string{"maporder", "nondeterm", "floateq", "stateswitch", "ctorerr", "registry", "gocapture"} {
		if !strings.Contains(sb.String(), rule) {
			t.Errorf("rule %s missing from -list output:\n%s", rule, sb.String())
		}
	}
}

func TestRunMC(t *testing.T) {
	var sb strings.Builder
	clean, err := run(&sb, options{mcMode: true, schemes: "dir1nb,moesi", caches: 2, blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !clean {
		t.Fatalf("model checker reported violations:\n%s", sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "Dir1NB") || !strings.Contains(out, "MOESI") {
		t.Errorf("missing engine summaries:\n%s", out)
	}
	if !strings.Contains(out, "states") || !strings.Contains(out, "unreachable") {
		t.Errorf("summary lines incomplete:\n%s", out)
	}
}

func TestSelectRules(t *testing.T) {
	rs, err := selectRules("floateq, registry")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Name() != "floateq" || rs[1].Name() != "registry" {
		t.Fatalf("selected %v", rs)
	}
	if _, err := selectRules("nosuchrule"); err == nil {
		t.Fatal("unknown rule accepted")
	}
}
