package main

import (
	"bytes"
	"strings"
	"testing"

	"dirsim/internal/trace"
)

func TestRunBinaryOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(&out, &errOut, "pero", 5000, 0, 0, "binary", true); err != nil {
		t.Fatal(err)
	}
	refs, err := trace.ReadAll(trace.NewBinaryReader(&out))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 5000 {
		t.Fatalf("decoded %d refs", len(refs))
	}
	if !strings.Contains(errOut.String(), "wrote 5000 references (PERO)") {
		t.Errorf("stats missing: %q", errOut.String())
	}
	if !strings.Contains(errOut.String(), "Table 3") {
		t.Error("Table 3 missing from stats")
	}
}

func TestRunTextOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(&out, &errOut, "thor", 100, 0, 0, "text", false); err != nil {
		t.Fatal(err)
	}
	refs, err := trace.ReadAll(trace.NewTextReader(&out))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 100 {
		t.Fatalf("decoded %d refs", len(refs))
	}
	if errOut.Len() != 0 {
		t.Errorf("stats printed despite -stats=false: %q", errOut.String())
	}
}

func TestRunOverrides(t *testing.T) {
	var a, b, errOut bytes.Buffer
	if err := run(&a, &errOut, "pops", 2000, 1, 0, "binary", false); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, &errOut, "pops", 2000, 2, 0, "binary", false); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("seed override had no effect")
	}
	var c bytes.Buffer
	if err := run(&c, &errOut, "pops", 2000, 0, 8, "binary", false); err != nil {
		t.Fatal(err)
	}
	refs, err := trace.ReadAll(trace.NewBinaryReader(&c))
	if err != nil {
		t.Fatal(err)
	}
	maxCPU := uint8(0)
	for _, r := range refs {
		if r.CPU > maxCPU {
			maxCPU = r.CPU
		}
	}
	if maxCPU < 4 {
		t.Errorf("cpu override had no effect: max CPU %d", maxCPU)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run(&out, &errOut, "nope", 100, 0, 0, "binary", false); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run(&out, &errOut, "pops", 100, 0, 0, "xml", false); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestPreset(t *testing.T) {
	for _, name := range []string{"pops", "THOR", "Pero"} {
		if _, err := preset(name, 10); err != nil {
			t.Errorf("preset(%q): %v", name, err)
		}
	}
	if _, err := preset("", 10); err == nil {
		t.Error("empty preset accepted")
	}
}
