// Command tracegen emits a synthetic multiprocessor address trace in the
// binary or text trace format (optionally gzip-compressed by file suffix),
// and prints its Table 3 characteristics.
//
// Usage:
//
//	tracegen -workload pops -refs 1000000 -o pops.trc
//	tracegen -workload thor -refs 200000 -format text -o -
//	tracegen -workload pero -refs 2000000 -o pero.trc.gz
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"dirsim/internal/atomicio"
	"dirsim/internal/report"
	"dirsim/internal/trace"
	"dirsim/internal/tracegen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	workload := flag.String("workload", "pops", "workload preset: pops, thor or pero")
	refs := flag.Int("refs", 1_000_000, "number of references to generate")
	seed := flag.Int64("seed", 0, "override the preset's random seed (0 keeps it)")
	cpus := flag.Int("cpus", 0, "override the preset's CPU count (0 keeps it)")
	out := flag.String("o", "-", "output file (.gz for gzip), or - for stdout")
	format := flag.String("format", "binary", "trace format: binary or text")
	stats := flag.Bool("stats", true, "print Table 3 characteristics to stderr")
	flag.Parse()

	if err := emit(*out, *workload, *refs, *seed, *cpus, *format, *stats); err != nil {
		log.Fatal(err)
	}
}

// emit generates the trace into out ("-" for stdout). File output goes
// through atomicio, so a crash or short write never leaves a truncated
// trace at the final path: the file only appears once fully flushed,
// synced and renamed.
func emit(out, workload string, refs int, seed int64, cpus int, format string, stats bool) error {
	if out == "-" {
		return run(os.Stdout, os.Stderr, workload, refs, seed, cpus, format, stats)
	}
	f, err := atomicio.Create(out)
	if err != nil {
		return err
	}
	defer f.Abort()
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(out, ".gz") {
		zw = gzip.NewWriter(f)
		w = zw
	}
	if err := run(w, os.Stderr, workload, refs, seed, cpus, format, stats); err != nil {
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return err
		}
	}
	return f.Commit()
}

// run generates the trace into w, reporting statistics to errW.
func run(w, errW io.Writer, workload string, refs int, seed int64, cpus int, format string, stats bool) error {
	cfg, err := preset(workload, refs)
	if err != nil {
		return err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if cpus != 0 {
		cfg.CPUs = cpus
	}
	gen, err := tracegen.New(cfg)
	if err != nil {
		return err
	}
	var tw interface {
		trace.Writer
		Flush() error
	}
	switch format {
	case "binary":
		tw = trace.NewBinaryWriter(w)
	case "text":
		tw = trace.NewTextWriter(w)
	default:
		return fmt.Errorf("unknown format %q (want binary or text)", format)
	}
	n, err := trace.Copy(tw, gen)
	if err != nil {
		return err
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if stats {
		gen2, err := tracegen.New(cfg)
		if err != nil {
			return err
		}
		st, err := trace.CollectStats(gen2, trace.DefaultBlockBytes)
		if err != nil {
			return err
		}
		fmt.Fprintf(errW, "wrote %d references (%s)\n", n, cfg.Name)
		fmt.Fprint(errW, report.Table3([]string{cfg.Name}, []trace.Stats{st}))
		fmt.Fprintf(errW, "lock reads: %.1f%% of data reads; shared refs: %.1f%% of data refs\n",
			st.LockReadFraction()*100, st.SharedRefFraction()*100)
		gen3, err := tracegen.New(cfg)
		if err != nil {
			return err
		}
		prof, err := trace.Profile(gen3, trace.DefaultBlockBytes)
		if err != nil {
			return err
		}
		fmt.Fprintf(errW, "sharing: %.1f%% of blocks shared; %.1f%% of writes fit one directory pointer\n",
			prof.SharedBlockFraction()*100, prof.PointerSufficiency(1)*100)
	}
	return nil
}

func preset(name string, refs int) (tracegen.Config, error) {
	switch strings.ToLower(name) {
	case "pops":
		return tracegen.POPS(refs), nil
	case "thor":
		return tracegen.THOR(refs), nil
	case "pero":
		return tracegen.PERO(refs), nil
	default:
		return tracegen.Config{}, fmt.Errorf("unknown workload %q (want pops, thor or pero)", name)
	}
}
