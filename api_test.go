package dirsim_test

// Public-API smoke tests: exercise every facade entry point end to end so
// that accidental signature or behaviour changes in the internal packages
// surface as failures here, where external users would feel them.

import (
	"bytes"
	"strings"
	"testing"

	"dirsim"
)

func TestAPITraceRoundTripAndFilters(t *testing.T) {
	tr := dirsim.Trace{
		{CPU: 0, Kind: dirsim.Read, Addr: 0x10, Lock: true},
		{CPU: 1, Kind: dirsim.Write, Addr: 0x20},
		{CPU: 0, Kind: dirsim.Instr, Addr: 0x30},
	}
	var bin, txt bytes.Buffer
	bw := dirsim.NewBinaryTraceWriter(&bin)
	tw := dirsim.NewTextTraceWriter(&txt)
	for _, r := range tr {
		if err := bw.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := tw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	fromBin, err := dirsim.ReadTrace(dirsim.NewBinaryTraceReader(&bin))
	if err != nil {
		t.Fatal(err)
	}
	fromTxt, err := dirsim.ReadTrace(dirsim.NewTextTraceReader(&txt))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromBin) != 3 || len(fromTxt) != 3 {
		t.Fatalf("round trips lost refs: %d, %d", len(fromBin), len(fromTxt))
	}
	filtered, err := dirsim.ReadTrace(dirsim.DropLockSpins(dirsim.NewTraceReader(tr)))
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered) != 2 {
		t.Fatalf("DropLockSpins kept %d refs", len(filtered))
	}
	limited, err := dirsim.ReadTrace(dirsim.LimitTrace(dirsim.NewTraceReader(tr), 1))
	if err != nil || len(limited) != 1 {
		t.Fatalf("LimitTrace: %v, %d", err, len(limited))
	}
}

func TestAPIStatsAndProfile(t *testing.T) {
	gen, err := dirsim.NewGenerator(dirsim.THOR(30_000))
	if err != nil {
		t.Fatal(err)
	}
	st, err := dirsim.CollectTraceStats(gen, dirsim.DefaultBlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	if st.Refs != 30_000 || st.CPUs != 4 {
		t.Fatalf("stats = %+v", st)
	}
	gen2, err := dirsim.NewGenerator(dirsim.THOR(30_000))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := dirsim.ProfileTrace(gen2, dirsim.DefaultBlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	if prof.SharedBlockFraction() <= 0 || prof.PointerSufficiency(4) <= 0 {
		t.Fatalf("profile degenerate: %+v", prof)
	}
}

func TestAPIEveryPublicScheme(t *testing.T) {
	tr, err := dirsim.GenerateTrace(dirsim.PERO(20_000))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range dirsim.SchemeNames() {
		rs, err := dirsim.RunSchemes(dirsim.NewTraceReader(tr), []string{name},
			dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r := rs[0]
		if r.Stats.Refs != 20_000 {
			t.Errorf("%s: Refs = %d", name, r.Stats.Refs)
		}
		if cpr := r.CyclesPerRef(dirsim.PipelinedBus()); cpr < 0 {
			t.Errorf("%s: negative cycles/ref", name)
		}
		if err := dirsim.VerifyAccounting(r); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestAPIStudyAndContention(t *testing.T) {
	sums, err := dirsim.SeedSweep(dirsim.PERO(15_000), dirsim.StudySeeds(5, 3),
		[]string{"dir0b", "dragon"}, dirsim.EngineConfig{Caches: 4},
		dirsim.Options{}, dirsim.MetricCyclesPerRef(dirsim.PipelinedBus()))
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := dirsim.CompareSchemes(sums[0], sums[1])
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Diff <= 0 {
		t.Errorf("Dir0B−Dragon = %v, want positive", cmp.Diff)
	}
	gen, err := dirsim.NewGenerator(dirsim.PERO(15_000))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := dirsim.RunSchemes(gen, []string{"dir0b"},
		dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	model, err := rs[0].Contention(dirsim.PipelinedBus(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := model.MVA(8)
	if err != nil || len(ms) != 8 {
		t.Fatalf("MVA: %v, %d", err, len(ms))
	}
	if _, err := model.Simulate(4, 100_000, 1); err != nil {
		t.Fatal(err)
	}
}

func TestAPIDirectoryStores(t *testing.T) {
	p := dirsim.DefaultStorageParams(16)
	stores := []dirsim.DirectoryStore{
		dirsim.NewFullMapStore(16),
		dirsim.NewTwoBitStore(),
		dirsim.NewTangStore(16),
	}
	lp, err := dirsim.NewLimitedPointerStore(2, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := dirsim.NewCodedSetStore(16)
	if err != nil {
		t.Fatal(err)
	}
	stores = append(stores, lp, cs)
	for _, s := range stores {
		if s.StorageBits(p) == 0 {
			t.Errorf("%s: zero storage", s.Name())
		}
		s.Add(1, 3)
		if n, _ := s.Count(1); n < 1 {
			t.Errorf("%s: Count after Add = %d", s.Name(), n)
		}
	}
}

func TestAPINUMAAndScaling(t *testing.T) {
	eng, err := dirsim.NewNUMA(dirsim.NUMAConfig{Nodes: 4, Policy: dirsim.FirstTouch})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := dirsim.NewGenerator(dirsim.PERO(15_000))
	if err != nil {
		t.Fatal(err)
	}
	st, err := dirsim.RunNUMA(gen, eng, dirsim.NUMAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MessagesPerRef() <= 0 {
		t.Error("no NUMA traffic")
	}
	central, distributed, err := dirsim.ScalingCurve(20, 4, 2, []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(central) != 2 || len(distributed) != 2 {
		t.Fatal("scaling curve shape wrong")
	}
}

func TestAPIWorkloadKnobs(t *testing.T) {
	cfg := dirsim.POPS(10_000)
	cfg.LockKind = dirsim.TestAndSet
	cfg.BarrierInterval = 1000
	cfg.CPUs = 8
	tr, err := dirsim.GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 10_000 {
		t.Fatalf("generated %d refs", len(tr))
	}
	sawLockWrite := false
	for _, r := range tr {
		if r.Lock && r.Kind == dirsim.Write {
			sawLockWrite = true
			break
		}
	}
	if !sawLockWrite {
		t.Error("TestAndSet knob had no effect")
	}
}

func TestAPISchemeNamesComplete(t *testing.T) {
	names := strings.Join(dirsim.SchemeNames(), ",")
	for _, want := range []string{"dir1nb", "dirnnb", "dir0b", "codedset", "tang",
		"wti", "dragon", "berkeley", "mesi", "moesi", "writeonce", "firefly",
		"competitive4", "readbroadcast"} {
		if !strings.Contains(names, want) {
			t.Errorf("SchemeNames missing %s", want)
		}
	}
}
