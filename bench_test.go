package dirsim_test

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's experiment index). Each benchmark regenerates
// its artifact from the synthetic workloads and reports the headline
// numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. cmd/paper prints the same artifacts as
// formatted tables.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"dirsim"
	"dirsim/internal/flight"
)

const benchRefs = 200_000

// benchTraces generates the three workloads once and replays them from
// memory in every benchmark iteration.
var benchTraces = struct {
	once   sync.Once
	names  []string
	traces []dirsim.Trace
}{}

func loadBenchTraces(b *testing.B) ([]string, []dirsim.Trace) {
	b.Helper()
	benchTraces.once.Do(func() {
		for _, cfg := range dirsim.Workloads(benchRefs) {
			tr, err := dirsim.GenerateTrace(cfg)
			if err != nil {
				b.Fatal(err)
			}
			benchTraces.names = append(benchTraces.names, cfg.Name)
			benchTraces.traces = append(benchTraces.traces, tr)
		}
	})
	return benchTraces.names, benchTraces.traces
}

// runCombinedBench runs schemes over all three in-memory traces and
// combines the results.
func runCombinedBench(b *testing.B, schemes []string) []dirsim.Result {
	b.Helper()
	_, traces := loadBenchTraces(b)
	perScheme := make([][]dirsim.Result, len(schemes))
	for _, tr := range traces {
		rs, err := dirsim.RunSchemes(dirsim.NewTraceReader(tr), schemes,
			dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i, r := range rs {
			perScheme[i] = append(perScheme[i], r)
		}
	}
	out := make([]dirsim.Result, len(schemes))
	for i, group := range perScheme {
		c, err := dirsim.CombineResults(group)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = c
	}
	return out
}

// T1 — Table 1: the fundamental bus timings (constants; the benchmark
// verifies their derivation work is trivial and reports the block size).
func BenchmarkTable1BusTimings(b *testing.B) {
	t := dirsim.DefaultBusTiming()
	for i := 0; i < b.N; i++ {
		if err := t.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(t.WordsPerBlock), "words/block")
}

// T2 — Table 2: derive both cost models from Table 1.
func BenchmarkTable2BusCycleCosts(b *testing.B) {
	t := dirsim.DefaultBusTiming()
	var pip, np dirsim.CostModel
	for i := 0; i < b.N; i++ {
		pip = t.Pipelined()
		np = t.NonPipelined()
	}
	b.ReportMetric(pip.Cost[dirsim.OpMemRead], "pip_mem_cycles")
	b.ReportMetric(np.Cost[dirsim.OpMemRead], "np_mem_cycles")
}

// T3 — Table 3: trace characteristics of the three workloads.
func BenchmarkTable3TraceCharacteristics(b *testing.B) {
	_, traces := loadBenchTraces(b)
	var lockFrac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := dirsim.CollectTraceStats(dirsim.NewTraceReader(traces[0]), dirsim.DefaultBlockBytes)
		if err != nil {
			b.Fatal(err)
		}
		lockFrac = st.LockReadFraction()
	}
	b.ReportMetric(lockFrac, "POPS_lock_read_frac")
}

// T4 — Table 4: event frequencies for the four schemes.
func BenchmarkTable4EventFrequencies(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dir1nb", "wti", "dir0b", "dragon"})
	}
	b.ReportMetric(float64(rs[0].Stats.Events.ReadMisses())/float64(rs[0].Stats.Refs)*100, "Dir1NB_rm_pct")
	b.ReportMetric(float64(rs[2].Stats.Events.ReadMisses())/float64(rs[2].Stats.Refs)*100, "Dir0B_rm_pct")
	b.ReportMetric(rs[3].EventFrequency(dirsim.EvWriteHitUpdate)*100, "Dragon_whdistrib_pct")
}

// F1 — Figure 1: invalidation fan-out on writes to previously-clean
// blocks.
func BenchmarkFigure1InvalidationHistogram(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dir0b"})
	}
	h := &rs[0].Stats.InvalFanout
	b.ReportMetric(h.CumulativeFraction(1)*100, "le1_inval_pct")
	b.ReportMetric(h.Mean(), "mean_fanout")
}

// F2 — Figure 2: bus cycles per reference, averaged over the traces,
// under both bus models.
func BenchmarkFigure2BusCyclesPerReference(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dir1nb", "wti", "dir0b", "dragon"})
	}
	pip, np := dirsim.PipelinedBus(), dirsim.NonPipelinedBus()
	for _, r := range rs {
		b.ReportMetric(r.CyclesPerRef(pip), r.Scheme+"_pip")
		_ = np
	}
	b.ReportMetric(rs[3].CyclesPerRef(np), "Dragon_nonpip")
}

// F3 — Figure 3: per-trace bus cycles per reference.
func BenchmarkFigure3PerTraceBusCycles(b *testing.B) {
	names, traces := loadBenchTraces(b)
	pip := dirsim.PipelinedBus()
	vals := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ti, tr := range traces {
			rs, err := dirsim.RunSchemes(dirsim.NewTraceReader(tr),
				[]string{"dir0b"}, dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			vals[names[ti]] = rs[0].CyclesPerRef(pip)
		}
	}
	for name, v := range vals {
		b.ReportMetric(v, "Dir0B_"+name)
	}
}

// T5 — Table 5: the per-operation cycle breakdown, including the Berkeley
// estimate.
func BenchmarkTable5CycleBreakdown(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dir1nb", "wti", "dir0b", "dragon", "berkeley"})
	}
	m := dirsim.PipelinedBus()
	d0 := rs[2]
	by := d0.CyclesByOp(m)
	b.ReportMetric(by[dirsim.OpWriteBack]/float64(d0.Stats.Refs), "Dir0B_writeback")
	b.ReportMetric(by[dirsim.OpDirCheck]/float64(d0.Stats.Refs), "Dir0B_diraccess")
	b.ReportMetric(rs[4].CyclesPerRef(m), "Berkeley_cpr")
}

// F4 — Figure 4: breakdown fractions per scheme.
func BenchmarkFigure4BreakdownFractions(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"wti", "dragon"})
	}
	m := dirsim.PipelinedBus()
	for _, r := range rs {
		by := r.CyclesByOp(m)
		var total float64
		for _, v := range by {
			total += v
		}
		wtwu := by[dirsim.OpWriteThrough] + by[dirsim.OpWriteUpdate]
		b.ReportMetric(wtwu/total, r.Scheme+"_write_frac")
	}
}

// F5 — Figure 5: average bus cycles per bus transaction.
func BenchmarkFigure5CyclesPerTransaction(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dir1nb", "wti", "dir0b", "dragon"})
	}
	m := dirsim.PipelinedBus()
	for _, r := range rs {
		b.ReportMetric(r.CyclesPerTransaction(m), r.Scheme+"_cpt")
	}
}

// E51 — Section 5.1: the fixed-overhead sensitivity of the Dragon-Dir0B
// gap.
func BenchmarkSection51FixedOverheadSensitivity(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dir0b", "dragon"})
	}
	m := dirsim.PipelinedBus()
	gap := func(q float64) float64 {
		return (rs[0].CyclesPerRefWithOverhead(m, q)/rs[1].CyclesPerRefWithOverhead(m, q) - 1) * 100
	}
	b.ReportMetric(gap(0), "gap_q0_pct")
	b.ReportMetric(gap(1), "gap_q1_pct")
}

// E52 — Section 5.2: the spin-lock impact on Dir1NB.
func BenchmarkSection52SpinLockImpact(b *testing.B) {
	_, traces := loadBenchTraces(b)
	m := dirsim.PipelinedBus()
	var withLocks, withoutLocks float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w, wo []dirsim.Result
		for _, tr := range traces {
			r1, err := dirsim.RunSchemes(dirsim.NewTraceReader(tr),
				[]string{"dir1nb"}, dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			r2, err := dirsim.RunSchemes(dirsim.DropLockSpins(dirsim.NewTraceReader(tr)),
				[]string{"dir1nb"}, dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			w = append(w, r1[0])
			wo = append(wo, r2[0])
		}
		cw, err := dirsim.CombineResults(w)
		if err != nil {
			b.Fatal(err)
		}
		cwo, err := dirsim.CombineResults(wo)
		if err != nil {
			b.Fatal(err)
		}
		withLocks = cw.CyclesPerRef(m)
		withoutLocks = cwo.CyclesPerRef(m)
	}
	b.ReportMetric(withLocks, "Dir1NB_with_locks")
	b.ReportMetric(withoutLocks, "Dir1NB_locks_excluded")
}

// E61 — Section 6: sequential invalidation vs broadcast.
func BenchmarkSection6SequentialInvalidation(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dir0b", "dirnnb"})
	}
	m := dirsim.PipelinedBus()
	b.ReportMetric(rs[0].CyclesPerRef(m), "Dir0B_cpr")
	b.ReportMetric(rs[1].CyclesPerRef(m), "DirnNB_cpr")
}

// E62 — Section 6: the Dir1B broadcast-cost model.
func BenchmarkSection6Dir1BBroadcastCost(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dir1b"})
	}
	m := dirsim.PipelinedBus()
	c1 := rs[0].CyclesPerRef(m.WithBroadcastCost(1))
	c16 := rs[0].CyclesPerRef(m.WithBroadcastCost(16))
	b.ReportMetric(c1, "cpr_b1")
	b.ReportMetric((c16-c1)/15, "slope_per_b")
}

// E63 — Section 6: the Dir_iNB / Dir_iB pointer sweep.
func BenchmarkSection6LimitedPointerSweep(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dir1b", "dir2b", "dir2nb", "dir4nb"})
	}
	b.ReportMetric(float64(rs[0].Stats.BroadcastInvals), "Dir1B_broadcasts")
	b.ReportMetric(float64(rs[1].Stats.BroadcastInvals), "Dir2B_broadcasts")
	b.ReportMetric(rs[2].Stats.Events.DataMissRate()*100, "Dir2NB_miss_pct")
	b.ReportMetric(rs[3].Stats.Events.DataMissRate()*100, "Dir4NB_miss_pct")
}

// E64 — Section 6: coded-set superset overhead.
func BenchmarkSection6CodedSetOverhead(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dirnnb", "codedset"})
	}
	wastedPer1k := float64(rs[1].Stats.WastedInvals) / float64(rs[1].Stats.Refs) * 1000
	b.ReportMetric(wastedPer1k, "wasted_inv_per_1k")
	b.ReportMetric(rs[1].CyclesPerRef(dirsim.PipelinedBus()), "CodedSet_cpr")
}

// E65 — Section 5: the effective-processor bound.
func BenchmarkSection5EffectiveProcessors(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"dragon"})
	}
	n := dirsim.EffectiveProcessors(rs[0].CyclesPerRef(dirsim.PipelinedBus()), 2, 10, 100)
	b.ReportMetric(n, "effective_procs")
}

// EX1 — ablation: directory storage per organisation.
func BenchmarkAblationDirectoryStorage(b *testing.B) {
	var fullBits, codedBits uint64
	for i := 0; i < b.N; i++ {
		p := dirsim.DefaultStorageParams(64)
		fullBits = dirsim.NewFullMapStore(64).StorageBits(p)
		cs, err := dirsim.NewCodedSetStore(64)
		if err != nil {
			b.Fatal(err)
		}
		codedBits = cs.StorageBits(p)
	}
	p := dirsim.DefaultStorageParams(64)
	b.ReportMetric(float64(fullBits)/float64(p.MemoryBlocks), "fullmap_bits_per_block")
	b.ReportMetric(float64(codedBits)/float64(p.MemoryBlocks), "coded_bits_per_block")
}

// EX2 — ablation: finite vs infinite caches (the paper's first-order
// finite-size correction, measured directly).
func BenchmarkAblationFiniteCache(b *testing.B) {
	_, traces := loadBenchTraces(b)
	m := dirsim.PipelinedBus()
	var inf, fin float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ri, err := dirsim.RunSchemes(dirsim.NewTraceReader(traces[0]),
			[]string{"dir0b"}, dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		rf, err := dirsim.RunSchemes(dirsim.NewTraceReader(traces[0]),
			[]string{"dir0b"}, dirsim.EngineConfig{Caches: 4, FiniteSets: 64, FiniteWays: 4},
			dirsim.Options{IncludeFirstRefCosts: true})
		if err != nil {
			b.Fatal(err)
		}
		inf = ri[0].CyclesPerRef(m)
		fin = rf[0].CyclesPerRef(m)
	}
	b.ReportMetric(inf, "infinite_cpr")
	b.ReportMetric(fin, "finite_256blk_cpr")
}

// EX3 — extension: the wider protocol zoo (Goodman write-once, Illinois
// MESI, Firefly) against the paper's four schemes.
func BenchmarkExtensionProtocolZoo(b *testing.B) {
	var rs []dirsim.Result
	for i := 0; i < b.N; i++ {
		rs = runCombinedBench(b, []string{"writeonce", "mesi", "firefly"})
	}
	m := dirsim.PipelinedBus()
	for _, r := range rs {
		b.ReportMetric(r.CyclesPerRef(m), r.Scheme+"_cpr")
	}
}

// EX4 — extension: bus contention via the closed queueing model; the
// refinement of the paper's "optimistic upper bound".
func BenchmarkExtensionBusContention(b *testing.B) {
	var knee int
	var eff16 float64
	for i := 0; i < b.N; i++ {
		rs := runCombinedBench(b, []string{"dragon"})
		model, err := rs[0].Contention(dirsim.PipelinedBus(), 0.5)
		if err != nil {
			b.Fatal(err)
		}
		ms, err := model.MVA(16)
		if err != nil {
			b.Fatal(err)
		}
		eff16 = ms[15].EffectiveProcessors
		knee, err = model.Knee(128, 0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(eff16, "Dragon_eff_procs_at_16")
	b.ReportMetric(float64(knee), "Dragon_knee_50pct")
}

// EX5 — ablation: spin primitive. Plain test-and-set turns every spin
// probe into an invalidating write; test-and-test-and-set spins locally.
func BenchmarkAblationLockPrimitive(b *testing.B) {
	m := dirsim.PipelinedBus()
	var tts, ts float64
	for i := 0; i < b.N; i++ {
		cfgTTS := dirsim.POPS(benchRefs)
		cfgTS := cfgTTS
		cfgTS.LockKind = dirsim.TestAndSet
		for _, run := range []struct {
			cfg dirsim.WorkloadConfig
			dst *float64
		}{{cfgTTS, &tts}, {cfgTS, &ts}} {
			gen, err := dirsim.NewGenerator(run.cfg)
			if err != nil {
				b.Fatal(err)
			}
			rs, err := dirsim.RunSchemes(gen, []string{"dir0b"},
				dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			*run.dst = rs[0].CyclesPerRef(m)
		}
	}
	b.ReportMetric(tts, "Dir0B_TTS_cpr")
	b.ReportMetric(ts, "Dir0B_TS_cpr")
	b.ReportMetric(ts/tts, "TS_penalty_x")
}

// E71 — Section 7: distributed memory/directory scaling vs a central bus.
func BenchmarkSection7DistributedScaling(b *testing.B) {
	var central, distributed []float64
	for i := 0; i < b.N; i++ {
		rs := runCombinedBench(b, []string{"dir0b"})
		model, err := rs[0].Contention(dirsim.PipelinedBus(), 0.5)
		if err != nil {
			b.Fatal(err)
		}
		central, distributed, err = dirsim.ScalingCurve(
			model.ThinkCycles, model.ServiceCycles, 2, []int{64})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(central[0], "central_eff_at_64")
	b.ReportMetric(distributed[0], "distributed_eff_at_64")
}

// EX6 — ablation: coherence block size. Larger blocks cut cold misses but
// merge independently-written words into shared blocks (false sharing).
func BenchmarkAblationBlockSize(b *testing.B) {
	_, traces := loadBenchTraces(b)
	m := dirsim.PipelinedBus()
	vals := map[int]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, bytes := range []int{16, 32, 64} {
			rs, err := dirsim.RunSchemes(dirsim.NewTraceReader(traces[0]),
				[]string{"dir0b"}, dirsim.EngineConfig{Caches: 4},
				dirsim.Options{BlockBytes: bytes})
			if err != nil {
				b.Fatal(err)
			}
			vals[bytes] = rs[0].CyclesPerRef(m)
		}
	}
	for _, bytes := range []int{16, 32, 64} {
		b.ReportMetric(vals[bytes], fmt.Sprintf("Dir0B_cpr_%dB", bytes))
	}
}

// EX7 — ablation: global barriers. The releasing write invalidates every
// waiter at once, fattening Figure 1's tail; update protocols instead pay
// one update per release.
func BenchmarkAblationBarriers(b *testing.B) {
	m := dirsim.PipelinedBus()
	var offCPR, onCPR, onTailFrac float64
	for i := 0; i < b.N; i++ {
		off := dirsim.PERO(benchRefs)
		on := off
		on.BarrierInterval = 500
		for _, run := range []struct {
			cfg  dirsim.WorkloadConfig
			cpr  *float64
			tail *float64
		}{{off, &offCPR, nil}, {on, &onCPR, &onTailFrac}} {
			gen, err := dirsim.NewGenerator(run.cfg)
			if err != nil {
				b.Fatal(err)
			}
			rs, err := dirsim.RunSchemes(gen, []string{"dir0b"},
				dirsim.EngineConfig{Caches: 4}, dirsim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			*run.cpr = rs[0].CyclesPerRef(m)
			if run.tail != nil {
				h := &rs[0].Stats.InvalFanout
				*run.tail = 1 - h.CumulativeFraction(1)
			}
		}
	}
	b.ReportMetric(offCPR, "Dir0B_no_barriers_cpr")
	b.ReportMetric(onCPR, "Dir0B_barriers_cpr")
	b.ReportMetric(onTailFrac*100, "fanout_gt1_pct_with_barriers")
}

// EX8 — extension: the Section 7 machine at message level — protocol
// messages and critical-path hops per reference on the distributed
// full-map directory, under both home-assignment policies.
func BenchmarkExtensionNUMAHops(b *testing.B) {
	_, traces := loadBenchTraces(b)
	vals := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, policy := range []dirsim.NUMAConfig{
			{Nodes: 4, Policy: dirsim.Interleaved},
			{Nodes: 4, Policy: dirsim.FirstTouch},
		} {
			e, err := dirsim.NewNUMA(policy)
			if err != nil {
				b.Fatal(err)
			}
			st, err := dirsim.RunNUMA(dirsim.NewTraceReader(traces[0]), e, dirsim.NUMAOptions{})
			if err != nil {
				b.Fatal(err)
			}
			vals[policy.Policy.String()+"_hops"] = st.CriticalHopsPerRef()
			vals[policy.Policy.String()+"_local"] = st.LocalHomeFraction()
		}
	}
	for k, v := range vals {
		b.ReportMetric(v, k)
	}
}

// EX9 — extension: sparse directories. A directory cache with a fraction
// of the blocks' entries costs little, because directory locality follows
// cache locality.
func BenchmarkExtensionSparseDirectory(b *testing.B) {
	_, traces := loadBenchTraces(b)
	m := dirsim.PipelinedBus()
	vals := map[string]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, entries := range []int{512, 2048, 0} {
			rs, err := dirsim.RunSchemes(dirsim.NewTraceReader(traces[0]),
				[]string{"dirnnb"}, dirsim.EngineConfig{Caches: 4, DirEntries: entries},
				dirsim.Options{})
			if err != nil {
				b.Fatal(err)
			}
			label := fmt.Sprintf("cpr_%d_entries", entries)
			if entries == 0 {
				label = "cpr_unbounded"
			}
			vals[label] = rs[0].CyclesPerRef(m)
		}
	}
	for k, v := range vals {
		b.ReportMetric(v, k)
	}
}

// EX10 — footnote 5: Figure 1's single-invalidation dominance on a larger
// machine, plus the protocol-free sharing profile.
func BenchmarkExtensionLargerMachine(b *testing.B) {
	var le1 float64
	var ptr1 float64
	for i := 0; i < b.N; i++ {
		cfg := dirsim.POPS(benchRefs)
		cfg.CPUs = 16
		cfg.Locks = 3
		gen, err := dirsim.NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := dirsim.RunSchemes(gen, []string{"dir0b"},
			dirsim.EngineConfig{Caches: 16}, dirsim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		le1 = rs[0].Stats.InvalFanout.CumulativeFraction(1) * 100
		gen2, err := dirsim.NewGenerator(cfg)
		if err != nil {
			b.Fatal(err)
		}
		prof, err := dirsim.ProfileTrace(gen2, dirsim.DefaultBlockBytes)
		if err != nil {
			b.Fatal(err)
		}
		ptr1 = prof.PointerSufficiency(1) * 100
	}
	b.ReportMetric(le1, "le1_inval_pct_16p")
	b.ReportMetric(ptr1, "one_pointer_writes_pct_16p")
}

// Throughput benchmark: raw simulation speed of the lockstep driver over a
// representative scheme mix, sequential versus the decode-once/fan-out
// parallel driver, versus sequential with the flight recorder at its
// default sampling. The parallel variant shards the engine set across
// GOMAXPROCS workers; results are bitwise-identical to sequential (asserted
// in internal/sim's parallel tests), so this measures pure driver overhead
// and scaling. The traced variant guards the recorder's overhead budget:
// it must stay within a few percent of the sequential baseline.
func BenchmarkSimulatorThroughput(b *testing.B) {
	_, traces := loadBenchTraces(b)
	tr := traces[0]
	schemes := []string{"dir1nb", "wti", "dir0b", "dragon"}
	cfg := dirsim.EngineConfig{Caches: 4}
	run := func(b *testing.B, mkOpts func() dirsim.Options) {
		b.SetBytes(int64(len(tr)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dirsim.RunSchemes(dirsim.NewTraceReader(tr), schemes, cfg, mkOpts()); err != nil {
				b.Fatal(err)
			}
		}
		// Engine-refs per second: each scheme consumes the full trace.
		b.ReportMetric(float64(len(tr)*len(schemes))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
	}
	b.Run("sequential", func(b *testing.B) { run(b, func() dirsim.Options { return dirsim.Options{} }) })
	b.Run("single", func(b *testing.B) {
		// One engine, sequential: the per-reference cost of the hot path
		// itself, with no fan-out amortization — the number the
		// data-oriented engine rewrite is measured on (BENCH_*.json).
		b.SetBytes(int64(len(tr)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dirsim.RunSchemes(dirsim.NewTraceReader(tr), []string{"dir0b"}, cfg, dirsim.Options{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrefs/s")
	})
	b.Run("parallel", func(b *testing.B) {
		run(b, func() dirsim.Options { return dirsim.Options{Parallel: runtime.GOMAXPROCS(0)} })
	})
	b.Run("traced", func(b *testing.B) {
		// A fresh recorder per run, as the CLIs do: rings and track
		// tables belong to one run's trace.
		run(b, func() dirsim.Options {
			return dirsim.Options{Recorder: flight.New(flight.Options{Sample: flight.DefaultSample})}
		})
	})
}
